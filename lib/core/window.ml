type extra = {
  mutable x_count : float;
  mutable x_bytes : float;
  mutable x_last : float;
}

type t = {
  w_half_life_us : float;
  w_pairs : (int * int) array;
  w_index : (int * int, int) Hashtbl.t;
  w_count : float array;
  w_bytes : float array;
  w_last : float array;
  w_extra : (int * int, extra) Hashtbl.t;
  mutable w_observed : int;
  mutable w_byte_observed : int;
}

let create ~half_life_us ~pairs =
  if not (half_life_us > 0.) then
    invalid_arg "Window.create: half_life_us must be positive";
  let n = Array.length pairs in
  let index = Hashtbl.create (2 * n) in
  Array.iteri
    (fun slot (a, b) ->
      let key = (min a b, max a b) in
      if Hashtbl.mem index key then
        invalid_arg "Window.create: duplicate pair"
      else Hashtbl.add index key slot)
    pairs;
  {
    w_half_life_us = half_life_us;
    w_pairs = Array.map (fun (a, b) -> (min a b, max a b)) pairs;
    w_index = index;
    w_count = Array.make n 0.;
    w_bytes = Array.make n 0.;
    w_last = Array.make n 0.;
    w_extra = Hashtbl.create 16;
    w_observed = 0;
    w_byte_observed = 0;
  }

let slot_count t = Array.length t.w_count
let observed t = t.w_observed
let byte_observed t = t.w_byte_observed
let extra_pairs t = Hashtbl.length t.w_extra

(* Per-cell lazy decay: a cell's stored weight is exact as of its own
   last-update time; reading or bumping it first folds in the decay
   since then. 2^(-dt/h) keeps half-life arithmetic exact at powers of
   two, which the unit tests pin down. *)
let decay t ~from_us ~to_us v =
  let dt = to_us -. from_us in
  if dt <= 0. then v else v *. Float.pow 2. (-.dt /. t.w_half_life_us)

let observe t ~at_us ~caller ~callee ~bytes =
  t.w_observed <- t.w_observed + 1;
  if bytes > 0 then t.w_byte_observed <- t.w_byte_observed + 1;
  let key = (min caller callee, max caller callee) in
  match Hashtbl.find_opt t.w_index key with
  | Some s ->
      t.w_count.(s) <- decay t ~from_us:t.w_last.(s) ~to_us:at_us t.w_count.(s) +. 1.;
      t.w_bytes.(s) <-
        decay t ~from_us:t.w_last.(s) ~to_us:at_us t.w_bytes.(s) +. float_of_int bytes;
      t.w_last.(s) <- at_us
  | None -> (
      match Hashtbl.find_opt t.w_extra key with
      | Some x ->
          x.x_count <- decay t ~from_us:x.x_last ~to_us:at_us x.x_count +. 1.;
          x.x_bytes <- decay t ~from_us:x.x_last ~to_us:at_us x.x_bytes +. float_of_int bytes;
          x.x_last <- at_us
      | None ->
          Hashtbl.add t.w_extra key
            { x_count = 1.; x_bytes = float_of_int bytes; x_last = at_us })

let add_bytes t ~at_us ~caller ~callee ~bytes =
  if bytes > 0 then t.w_byte_observed <- t.w_byte_observed + 1;
  let key = (min caller callee, max caller callee) in
  match Hashtbl.find_opt t.w_index key with
  | Some s ->
      t.w_count.(s) <- decay t ~from_us:t.w_last.(s) ~to_us:at_us t.w_count.(s);
      t.w_bytes.(s) <-
        decay t ~from_us:t.w_last.(s) ~to_us:at_us t.w_bytes.(s) +. float_of_int bytes;
      t.w_last.(s) <- at_us
  | None -> (
      match Hashtbl.find_opt t.w_extra key with
      | Some x ->
          x.x_count <- decay t ~from_us:x.x_last ~to_us:at_us x.x_count;
          x.x_bytes <- decay t ~from_us:x.x_last ~to_us:at_us x.x_bytes +. float_of_int bytes;
          x.x_last <- at_us
      | None ->
          Hashtbl.add t.w_extra key
            { x_count = 0.; x_bytes = float_of_int bytes; x_last = at_us })

let counts_at t ~now_us =
  Array.init (Array.length t.w_count) (fun s ->
      decay t ~from_us:t.w_last.(s) ~to_us:now_us t.w_count.(s))

let bytes_at t ~now_us =
  Array.init (Array.length t.w_bytes) (fun s ->
      decay t ~from_us:t.w_last.(s) ~to_us:now_us t.w_bytes.(s))

let extras_at t ~now_us =
  List.sort compare
    (Hashtbl.fold
       (fun key x acc -> (key, decay t ~from_us:x.x_last ~to_us:now_us x.x_count) :: acc)
       t.w_extra [])

let total_at t ~now_us =
  let total = ref 0. in
  Array.iteri
    (fun s _ -> total := !total +. decay t ~from_us:t.w_last.(s) ~to_us:now_us t.w_count.(s))
    t.w_count;
  Hashtbl.iter
    (fun _ x -> total := !total +. decay t ~from_us:x.x_last ~to_us:now_us x.x_count)
    t.w_extra;
  !total

let byte_total_at t ~now_us =
  let total = ref 0. in
  Array.iteri
    (fun s _ -> total := !total +. decay t ~from_us:t.w_last.(s) ~to_us:now_us t.w_bytes.(s))
    t.w_bytes;
  Hashtbl.iter
    (fun _ x -> total := !total +. decay t ~from_us:x.x_last ~to_us:now_us x.x_bytes)
    t.w_extra;
  !total

let signature_at t ~now_us =
  let slots =
    Array.to_list
      (Array.mapi
         (fun s key ->
           (key, decay t ~from_us:t.w_last.(s) ~to_us:now_us t.w_count.(s)))
         t.w_pairs)
  in
  Drift.of_weights (slots @ extras_at t ~now_us)

let byte_signature_at t ~now_us =
  let slots =
    Array.to_list
      (Array.mapi
         (fun s key ->
           (key, decay t ~from_us:t.w_last.(s) ~to_us:now_us t.w_bytes.(s)))
         t.w_pairs)
  in
  let extras =
    List.sort compare
      (Hashtbl.fold
         (fun key x acc -> (key, decay t ~from_us:x.x_last ~to_us:now_us x.x_bytes) :: acc)
         t.w_extra [])
  in
  Drift.of_weights (slots @ extras)
