(** Stage 1 of the analysis engine: the network-independent abstract
    ICC graph (paper §2, §3.3).

    The profile's ICC summaries are message histograms, deliberately
    free of any network parameter, so one profile can be re-analyzed
    against many network profiles (the adaptivity of §4.4). This module
    captures everything about a profile the pricing stage needs, built
    once per (classifier, ICC) pair:

    - a node per classification plus one for the main program;
    - one symmetric edge per communicating unordered pair, flagged
      non-remotable when any interface between the pair is;
    - the pair's traffic as segments of (message size, count) items —
      one segment per ICC entry, in entry order — over a shared
      dictionary of distinct rounded bucket-mean sizes.

    Pricing the graph against a concrete {!Coign_netsim.Net_profiler}
    is then one fitted prediction per distinct size followed by a dot
    product per segment ({!price}), instead of a prediction per
    (entry, bucket, network) as the one-stage engine paid.

    The builder consumes {!Icc.entries} in a single grouped pass — no
    intermediate per-pair entry lists are rebuilt — and the float
    summation order is exactly the one-stage engine's (per-bucket
    within an entry, entries in sorted order), so priced costs and
    predicted communication times are bit-identical, not merely
    close. *)

type t

type pricing = {
  pair_us : float array;  (** summed traffic cost per pair, indexed by pair id *)
  seg_us : float array;   (** cost per segment, in segment (= entry) order *)
}

val build : classifier:Classifier.t -> icc:Icc.t -> t
(** Nodes [0 .. n-1] are the classifier's classifications; node [n]
    stands for the main program (classification -1). Entries whose
    endpoints map to the same node carry no potential communication
    and are dropped. *)

val classification_count : t -> int
(** [n]: nodes below this are classifications, node [n] is main. *)

val main_node : t -> int
(** = [classification_count]. *)

val pair_count : t -> int

val pair : t -> int -> int * int
(** Endpoints of a pair id, as [(a, b)] with [a < b]; ids are assigned
    in first-appearance (entry) order. *)

val pair_non_remotable : t -> int -> bool

val iter_pairs : t -> (int -> a:int -> b:int -> non_remotable:bool -> unit) -> unit
(** Iterate pairs in pair-id order. *)

val segment_count : t -> int

val size_count : t -> int
(** Distinct interned message sizes — the length of a cost table. *)

val price : t -> net:Coign_netsim.Net_profiler.t -> pricing
(** Stage 2's entry point: map a network profile onto the abstract
    graph. Cost table first (one compiled prediction per distinct
    size), then each segment as a count·cost dot product. Equivalent
    to {!cost_table} + {!price_into} on fresh buffers. *)

val cost_table : t -> Coign_netsim.Net_profiler.compiled -> float array
(** Per-distinct-size predicted cost (µs) under one compiled network
    profile — the memoizable, network-dependent half of pricing. *)

val make_pricing : t -> pricing
(** Zeroed pricing buffers sized for this graph, for reuse across
    {!price_into} calls. *)

val price_into : t -> cost:float array -> pricing -> unit
(** Recompute a pricing into preallocated buffers from a cost table:
    one dot product per segment, no allocation. The float summation
    order is identical to {!price}'s, so results are bit-identical. *)

type scale = {
  sc_messages : float array;  (** per-pair message-count multiplier *)
  sc_bytes : float array;     (** per-pair byte-volume multiplier *)
}
(** An observation window's per-pair traffic, relative to the profile:
    how many times the profiled message count (and byte volume) is
    flowing now. Both arrays are indexed by pair id. *)

val price_scaled_into :
  t -> cost:float array -> zero_us:float -> scale:scale -> pricing -> unit
(** [price_into] with each pair's traffic volume rescaled by [scale] —
    how an observation window re-prices the profiled graph in place:
    the profile supplies the per-pair message-size mix, the window
    supplies how much of it is flowing now. A message's cost splits
    into a fixed per-message part ([zero_us], the predicted cost of a
    zero-byte message) and a size-dependent remainder; the former
    scales with [sc_messages], the latter with [sc_bytes], so a window
    that saw the profiled call rate but fatter payloads prices the
    extra bytes without inventing extra calls. When a pair's two
    multipliers are equal the whole segment cost is multiplied once,
    which keeps an all-ones scale bit-identical to {!price_into}.
    Raises [Invalid_argument] when either array is not [pair_count]
    long. *)

val pair_messages : t -> float array
(** Total profiled message count per pair id (the scale denominators
    for window-relative re-pricing; calls record two messages each). *)

val pair_bytes : t -> float array
(** Total profiled byte volume per pair id (the [sc_bytes]
    denominators). *)

val predicted_us : t -> pricing -> separated:(int -> bool) -> float
(** Total cost of the segments whose pair the placement separates,
    summed in segment order — the [predicted_comm_us] of a cut. *)
