open Coign_util

type shard_map = Hash of int | Range of int array

type shape = { sh_hosts : int; sh_replicas : int; sh_map : shard_map }

let shard_count = function
  | Hash k -> k
  | Range bounds -> Array.length bounds + 1

let check_map = function
  | Hash k -> if k < 1 then invalid_arg "Pool.shape: Hash shard count < 1"
  | Range bounds ->
      Array.iteri
        (fun i b ->
          if i > 0 && b <= bounds.(i - 1) then
            invalid_arg "Pool.shape: Range bounds not strictly increasing")
        bounds

let shape ?replicas ?map hosts =
  if hosts < 1 then invalid_arg "Pool.shape: hosts < 1";
  let sh_map = match map with Some m -> m | None -> Hash hosts in
  check_map sh_map;
  let sh_replicas = match replicas with Some r -> r | None -> min 2 hosts in
  if sh_replicas < 1 || sh_replicas > hosts then
    invalid_arg "Pool.shape: replicas outside [1, hosts]";
  { sh_hosts = hosts; sh_replicas; sh_map }

(* Stable keyed hash: the splitmix64 finalizer over the key, folded to
   a non-negative int. Pure, so a shard map reused across pool
   instantiations can never drift. *)
let hash_key c = Int64.to_int (Prng.mix64 (Int64.of_int c)) land max_int

let shard_of map c =
  match map with
  | Hash k -> hash_key c mod k
  | Range bounds ->
      (* First bound strictly above [c]; past the last bound = last shard. *)
      let n = Array.length bounds in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if c < bounds.(mid) then search lo mid else search (mid + 1) hi
      in
      search 0 n

let host_of shape shard = shard mod shape.sh_hosts

let replica_hosts shape shard =
  let primary = host_of shape shard in
  List.init shape.sh_replicas (fun i -> (primary + i) mod shape.sh_hosts)

let pp ppf s =
  let map =
    match s.sh_map with
    | Hash k -> Printf.sprintf "hash/%d" k
    | Range bounds ->
        Printf.sprintf "range[%s]"
          (String.concat ";" (Array.to_list (Array.map string_of_int bounds)))
  in
  Format.fprintf ppf "pool %d hosts, %d replica(s), %s" s.sh_hosts s.sh_replicas map
