open Coign_util

type t =
  | Component_instantiated of { inst : int; cname : string; classification : int; creator : int }
  | Component_destroyed of { inst : int }
  | Interface_instantiated of { owner : int; iface : string; handle : int }
  | Interface_destroyed of { owner : int; iface : string; handle : int }
  | Interface_call of {
      caller : int;
      caller_classification : int;
      callee : int;
      callee_classification : int;
      iface : string;
      meth : string;
      remotable : bool;
      request_bytes : int;
      reply_bytes : int;
    }
  | Call_retried of { iface : string; meth : string; retries : int }
  | Instantiation_degraded of { cname : string; classification : int }
  | Breaker_opened of { at_us : int; failures : int; drops : int; spikes : int }
  | Breaker_closed of { at_us : int; probes : int }
  | Failover of {
      at_us : int;
      rung : string;
      from_rung : int;
      to_rung : int;
      migrated : int;
      stranded : int;
    }
  | Failback of { at_us : int; rung : string; from_rung : int; to_rung : int; migrated : int }
  | Instance_migrated of {
      at_us : int;
      inst : int;
      classification : int;
      from_loc : string;
      to_loc : string;
    }
  | Drift_detected of {
      at_us : int;
      similarity : float;
      threshold : float;
      window_pairs : int;
    }
  | Repartitioned of {
      at_us : int;
      similarity : float;
      from_servers : int;
      to_servers : int;
      migrated : int;
      left : int;
    }
  | Replica_promoted of { at_us : int; shard : int; from_host : int; to_host : int }
  | Shard_split of { at_us : int; shard : int; new_shard : int; moved : int; to_host : int }
  | Pool_resized of {
      at_us : int;
      from_hosts : int;
      to_hosts : int;
      shards : int;
      migrated : int;
    }

let kind_name = function
  | Component_instantiated _ -> "component_instantiated"
  | Component_destroyed _ -> "component_destroyed"
  | Interface_instantiated _ -> "interface_instantiated"
  | Interface_destroyed _ -> "interface_destroyed"
  | Interface_call _ -> "interface_call"
  | Call_retried _ -> "call_retried"
  | Instantiation_degraded _ -> "instantiation_degraded"
  | Breaker_opened _ -> "breaker_opened"
  | Breaker_closed _ -> "breaker_closed"
  | Failover _ -> "failover"
  | Failback _ -> "failback"
  | Instance_migrated _ -> "instance_migrated"
  | Drift_detected _ -> "drift_detected"
  | Repartitioned _ -> "repartitioned"
  | Replica_promoted _ -> "replica_promoted"
  | Shard_split _ -> "shard_split"
  | Pool_resized _ -> "pool_resized"

let fields = function
  | Component_instantiated { inst; cname; classification; creator } ->
      [
        ("inst", Jsonu.Int inst);
        ("cname", Jsonu.Str cname);
        ("classification", Jsonu.Int classification);
        ("creator", Jsonu.Int creator);
      ]
  | Component_destroyed { inst } -> [ ("inst", Jsonu.Int inst) ]
  | Interface_instantiated { owner; iface; handle } ->
      [ ("owner", Jsonu.Int owner); ("iface", Jsonu.Str iface); ("handle", Jsonu.Int handle) ]
  | Interface_destroyed { owner; iface; handle } ->
      [ ("owner", Jsonu.Int owner); ("iface", Jsonu.Str iface); ("handle", Jsonu.Int handle) ]
  | Interface_call
      {
        caller;
        caller_classification;
        callee;
        callee_classification;
        iface;
        meth;
        remotable;
        request_bytes;
        reply_bytes;
      } ->
      [
        ("caller", Jsonu.Int caller);
        ("caller_classification", Jsonu.Int caller_classification);
        ("callee", Jsonu.Int callee);
        ("callee_classification", Jsonu.Int callee_classification);
        ("iface", Jsonu.Str iface);
        ("meth", Jsonu.Str meth);
        ("remotable", Jsonu.Bool remotable);
        ("request_bytes", Jsonu.Int request_bytes);
        ("reply_bytes", Jsonu.Int reply_bytes);
      ]
  | Call_retried { iface; meth; retries } ->
      [ ("iface", Jsonu.Str iface); ("meth", Jsonu.Str meth); ("retries", Jsonu.Int retries) ]
  | Instantiation_degraded { cname; classification } ->
      [ ("cname", Jsonu.Str cname); ("classification", Jsonu.Int classification) ]
  | Breaker_opened { at_us; failures; drops; spikes } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("failures", Jsonu.Int failures);
        ("drops", Jsonu.Int drops);
        ("spikes", Jsonu.Int spikes);
      ]
  | Breaker_closed { at_us; probes } ->
      [ ("at_us", Jsonu.Int at_us); ("probes", Jsonu.Int probes) ]
  | Failover { at_us; rung; from_rung; to_rung; migrated; stranded } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("rung", Jsonu.Str rung);
        ("from_rung", Jsonu.Int from_rung);
        ("to_rung", Jsonu.Int to_rung);
        ("migrated", Jsonu.Int migrated);
        ("stranded", Jsonu.Int stranded);
      ]
  | Failback { at_us; rung; from_rung; to_rung; migrated } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("rung", Jsonu.Str rung);
        ("from_rung", Jsonu.Int from_rung);
        ("to_rung", Jsonu.Int to_rung);
        ("migrated", Jsonu.Int migrated);
      ]
  | Instance_migrated { at_us; inst; classification; from_loc; to_loc } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("inst", Jsonu.Int inst);
        ("classification", Jsonu.Int classification);
        ("from_loc", Jsonu.Str from_loc);
        ("to_loc", Jsonu.Str to_loc);
      ]
  | Drift_detected { at_us; similarity; threshold; window_pairs } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("similarity", Jsonu.Float similarity);
        ("threshold", Jsonu.Float threshold);
        ("window_pairs", Jsonu.Int window_pairs);
      ]
  | Repartitioned { at_us; similarity; from_servers; to_servers; migrated; left } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("similarity", Jsonu.Float similarity);
        ("from_servers", Jsonu.Int from_servers);
        ("to_servers", Jsonu.Int to_servers);
        ("migrated", Jsonu.Int migrated);
        ("left", Jsonu.Int left);
      ]
  | Replica_promoted { at_us; shard; from_host; to_host } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("shard", Jsonu.Int shard);
        ("from_host", Jsonu.Int from_host);
        ("to_host", Jsonu.Int to_host);
      ]
  | Shard_split { at_us; shard; new_shard; moved; to_host } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("shard", Jsonu.Int shard);
        ("new_shard", Jsonu.Int new_shard);
        ("moved", Jsonu.Int moved);
        ("to_host", Jsonu.Int to_host);
      ]
  | Pool_resized { at_us; from_hosts; to_hosts; shards; migrated } ->
      [
        ("at_us", Jsonu.Int at_us);
        ("from_hosts", Jsonu.Int from_hosts);
        ("to_hosts", Jsonu.Int to_hosts);
        ("shards", Jsonu.Int shards);
        ("migrated", Jsonu.Int migrated);
      ]

let to_json e = Jsonu.Obj (("event", Jsonu.Str (kind_name e)) :: fields e)

let to_line e =
  String.concat "\t"
    (kind_name e :: List.map (fun (k, v) -> k ^ "=" ^ Jsonu.to_string v) (fields e))

exception Bad of string

let of_json j =
  let field k =
    match Jsonu.member k j with
    | Some v -> v
    | None -> raise (Bad ("missing field " ^ k))
  in
  let int k =
    match field k with Jsonu.Int i -> i | _ -> raise (Bad ("field " ^ k ^ " is not an int"))
  in
  let str k =
    match field k with
    | Jsonu.Str s -> s
    | _ -> raise (Bad ("field " ^ k ^ " is not a string"))
  in
  let bool k =
    match field k with
    | Jsonu.Bool b -> b
    | _ -> raise (Bad ("field " ^ k ^ " is not a bool"))
  in
  let float k =
    match field k with
    | Jsonu.Float f -> f
    | Jsonu.Int i -> float_of_int i
    | _ -> raise (Bad ("field " ^ k ^ " is not a number"))
  in
  try
    match field "event" with
    | Jsonu.Str "component_instantiated" ->
        Ok
          (Component_instantiated
             {
               inst = int "inst";
               cname = str "cname";
               classification = int "classification";
               creator = int "creator";
             })
    | Jsonu.Str "component_destroyed" -> Ok (Component_destroyed { inst = int "inst" })
    | Jsonu.Str "interface_instantiated" ->
        Ok
          (Interface_instantiated
             { owner = int "owner"; iface = str "iface"; handle = int "handle" })
    | Jsonu.Str "interface_destroyed" ->
        Ok
          (Interface_destroyed { owner = int "owner"; iface = str "iface"; handle = int "handle" })
    | Jsonu.Str "interface_call" ->
        Ok
          (Interface_call
             {
               caller = int "caller";
               caller_classification = int "caller_classification";
               callee = int "callee";
               callee_classification = int "callee_classification";
               iface = str "iface";
               meth = str "meth";
               remotable = bool "remotable";
               request_bytes = int "request_bytes";
               reply_bytes = int "reply_bytes";
             })
    | Jsonu.Str "call_retried" ->
        Ok (Call_retried { iface = str "iface"; meth = str "meth"; retries = int "retries" })
    | Jsonu.Str "instantiation_degraded" ->
        Ok (Instantiation_degraded { cname = str "cname"; classification = int "classification" })
    | Jsonu.Str "breaker_opened" ->
        Ok
          (Breaker_opened
             {
               at_us = int "at_us";
               failures = int "failures";
               drops = int "drops";
               spikes = int "spikes";
             })
    | Jsonu.Str "breaker_closed" ->
        Ok (Breaker_closed { at_us = int "at_us"; probes = int "probes" })
    | Jsonu.Str "failover" ->
        Ok
          (Failover
             {
               at_us = int "at_us";
               rung = str "rung";
               from_rung = int "from_rung";
               to_rung = int "to_rung";
               migrated = int "migrated";
               stranded = int "stranded";
             })
    | Jsonu.Str "failback" ->
        Ok
          (Failback
             {
               at_us = int "at_us";
               rung = str "rung";
               from_rung = int "from_rung";
               to_rung = int "to_rung";
               migrated = int "migrated";
             })
    | Jsonu.Str "instance_migrated" ->
        Ok
          (Instance_migrated
             {
               at_us = int "at_us";
               inst = int "inst";
               classification = int "classification";
               from_loc = str "from_loc";
               to_loc = str "to_loc";
             })
    | Jsonu.Str "drift_detected" ->
        Ok
          (Drift_detected
             {
               at_us = int "at_us";
               similarity = float "similarity";
               threshold = float "threshold";
               window_pairs = int "window_pairs";
             })
    | Jsonu.Str "repartitioned" ->
        Ok
          (Repartitioned
             {
               at_us = int "at_us";
               similarity = float "similarity";
               from_servers = int "from_servers";
               to_servers = int "to_servers";
               migrated = int "migrated";
               left = int "left";
             })
    | Jsonu.Str "replica_promoted" ->
        Ok
          (Replica_promoted
             {
               at_us = int "at_us";
               shard = int "shard";
               from_host = int "from_host";
               to_host = int "to_host";
             })
    | Jsonu.Str "shard_split" ->
        Ok
          (Shard_split
             {
               at_us = int "at_us";
               shard = int "shard";
               new_shard = int "new_shard";
               moved = int "moved";
               to_host = int "to_host";
             })
    | Jsonu.Str "pool_resized" ->
        Ok
          (Pool_resized
             {
               at_us = int "at_us";
               from_hosts = int "from_hosts";
               to_hosts = int "to_hosts";
               shards = int "shards";
               migrated = int "migrated";
             })
    | Jsonu.Str other -> Error ("unknown event kind " ^ other)
    | _ -> Error "event tag is not a string"
  with Bad msg -> Error msg

let pp ppf = function
  | Component_instantiated { inst; cname; classification; creator } ->
      Format.fprintf ppf "create #%d %s -> c%d (by #%d)" inst cname classification creator
  | Component_destroyed { inst } -> Format.fprintf ppf "destroy #%d" inst
  | Interface_instantiated { owner; iface; handle } ->
      Format.fprintf ppf "iface+ #%d %s h%d" owner iface handle
  | Interface_destroyed { owner; iface; handle } ->
      Format.fprintf ppf "iface- #%d %s h%d" owner iface handle
  | Interface_call { caller; callee; iface; meth; request_bytes; reply_bytes; _ } ->
      Format.fprintf ppf "call #%d -> #%d %s.%s (%d/%d bytes)" caller callee iface meth
        request_bytes reply_bytes
  | Call_retried { iface; meth; retries } ->
      Format.fprintf ppf "retry %s.%s x%d" iface meth retries
  | Instantiation_degraded { cname; classification } ->
      Format.fprintf ppf "degrade %s c%d -> creator machine" cname classification
  | Breaker_opened { at_us; failures; drops; spikes } ->
      Format.fprintf ppf "breaker open @%dus after %d failures (%d drops, %d spikes)" at_us
        failures drops spikes
  | Breaker_closed { at_us; probes } ->
      Format.fprintf ppf "breaker closed @%dus after %d probe(s)" at_us probes
  | Failover { at_us; rung; from_rung; to_rung; migrated; stranded } ->
      Format.fprintf ppf "failover @%dus rung %d -> %d (%s), %d migrated, %d stranded" at_us
        from_rung to_rung rung migrated stranded
  | Failback { at_us; rung; from_rung; to_rung; migrated } ->
      Format.fprintf ppf "failback @%dus rung %d -> %d (%s), %d migrated" at_us from_rung
        to_rung rung migrated
  | Instance_migrated { at_us; inst; classification; from_loc; to_loc } ->
      Format.fprintf ppf "migrate @%dus #%d c%d %s -> %s" at_us inst classification from_loc
        to_loc
  | Drift_detected { at_us; similarity; threshold; window_pairs } ->
      Format.fprintf ppf "drift @%dus similarity %.3f < %.3f over %d pair(s)" at_us similarity
        threshold window_pairs
  | Repartitioned { at_us; similarity; from_servers; to_servers; migrated; left } ->
      Format.fprintf ppf "repartition @%dus similarity %.3f, %d -> %d server-side, %d migrated, %d left"
        at_us similarity from_servers to_servers migrated left
  | Replica_promoted { at_us; shard; from_host; to_host } ->
      Format.fprintf ppf "promote @%dus shard %d host %d -> %d" at_us shard from_host to_host
  | Shard_split { at_us; shard; new_shard; moved; to_host } ->
      Format.fprintf ppf "split @%dus shard %d -> +%d (%d moved) on host %d" at_us shard
        new_shard moved to_host
  | Pool_resized { at_us; from_hosts; to_hosts; shards; migrated } ->
      Format.fprintf ppf "resize @%dus pool %d -> %d hosts (%d shards), %d migrated" at_us
        from_hosts to_hosts shards migrated
