type t =
  | Component_instantiated of { inst : int; cname : string; classification : int; creator : int }
  | Component_destroyed of { inst : int }
  | Interface_instantiated of { owner : int; iface : string; handle : int }
  | Interface_destroyed of { owner : int; iface : string; handle : int }
  | Interface_call of {
      caller : int;
      caller_classification : int;
      callee : int;
      callee_classification : int;
      iface : string;
      meth : string;
      remotable : bool;
      request_bytes : int;
      reply_bytes : int;
    }
  | Call_retried of { iface : string; meth : string; retries : int }
  | Instantiation_degraded of { cname : string; classification : int }

let kind_name = function
  | Component_instantiated _ -> "component_instantiated"
  | Component_destroyed _ -> "component_destroyed"
  | Interface_instantiated _ -> "interface_instantiated"
  | Interface_destroyed _ -> "interface_destroyed"
  | Interface_call _ -> "interface_call"
  | Call_retried _ -> "call_retried"
  | Instantiation_degraded _ -> "instantiation_degraded"

let pp ppf = function
  | Component_instantiated { inst; cname; classification; creator } ->
      Format.fprintf ppf "create #%d %s -> c%d (by #%d)" inst cname classification creator
  | Component_destroyed { inst } -> Format.fprintf ppf "destroy #%d" inst
  | Interface_instantiated { owner; iface; handle } ->
      Format.fprintf ppf "iface+ #%d %s h%d" owner iface handle
  | Interface_destroyed { owner; iface; handle } ->
      Format.fprintf ppf "iface- #%d %s h%d" owner iface handle
  | Interface_call { caller; callee; iface; meth; request_bytes; reply_bytes; _ } ->
      Format.fprintf ppf "call #%d -> #%d %s.%s (%d/%d bytes)" caller callee iface meth
        request_bytes reply_bytes
  | Call_retried { iface; meth; retries } ->
      Format.fprintf ppf "retry %s.%s x%d" iface meth retries
  | Instantiation_degraded { cname; classification } ->
      Format.fprintf ppf "degrade %s c%d -> creator machine" cname classification
