(** The component factory (paper §3.5).

    During distributed execution a copy of the factory runs on each
    machine; the factories act as peers, each trapping instantiation
    requests on its own machine, forwarding requests destined for the
    other machine, and fulfilling local requests by invoking the
    object runtime. Our two peer factories share one process, but the
    protocol is preserved: a request always arrives at the creator's
    machine first and is forwarded (and counted) when the instance
    classifier maps the new instance elsewhere. *)

type policy =
  | By_classification of Analysis.distribution
      (** the Coign-chosen distribution: classification -> machine *)
  | By_class of (string -> Constraints.location)
      (** a class-name-based placement (the application's default
          distribution, or a manual one) *)
  | All_client
      (** the undistributed application *)

type t

val create : ?metrics:Coign_obs.Metrics.registry -> policy -> t
(** With [metrics], {!decide} outcomes also count into
    [coign_factory_requests_total{kind="local"|"forwarded"}]. *)

val decide :
  t -> classification:int -> cname:string -> creator_machine:Constraints.location ->
  Constraints.location
(** Where to fulfil an instantiation request. Under
    [By_classification], an unknown classification (never profiled)
    stays on the creator's machine. Counts the request as local or
    forwarded. *)

val policy : t -> policy

val set_policy : t -> policy -> unit
(** Atomically replace the placement policy — the resilience layer's
    failover primitive. Instantiation requests decided afterwards
    follow the new policy; already-placed instances keep their recorded
    machine until re-recorded ({!record_instance}). *)

val record_instance : t -> inst:int -> Constraints.location -> unit
val machine_of : t -> int -> Constraints.location
(** Machine an instance was placed on; the main program (instance 0)
    and unrecorded instances are on the client. *)

val instances_on : t -> Constraints.location -> int list

val instances : t -> (int * Constraints.location) list
(** All recorded instances with their machines, sorted by instance. *)

val local_requests : t -> int
(** Requests fulfilled on the machine where they arrived. *)

val forwarded_requests : t -> int
(** Requests relocated to the peer factory. *)
