(** Distribution across three or more machines (paper §2's future work).

    "The problem of partitioning applications across three or more
    machines is provably NP-hard. Numerous heuristic algorithms exist
    for multi-way graph cutting. To more accurately evaluate the rest
    of the system, we restrict ourselves to an exact, two-way algorithm
    for client-server computing."

    This module lifts the analysis engine onto the
    {!Coign_flowgraph.Multiway} isolation heuristic: one terminal per
    machine, the same communication-time pricing and constraint edges
    as the two-way engine, and a (2 - 2/k)-approximate cut. The natural
    first user is the Corporate Benefits sample, whose 3-tier
    deployment (client / middle tier / database server) the two-way
    engine had to collapse. *)

type t = {
  machines : string array;       (** machine names; index is the id *)
  assignment : int array;        (** classification -> machine index *)
  cost_ns : int;                 (** capacity crossing between machines *)
  predicted_comm_us : float;     (** priced traffic between machines *)
}

val choose :
  classifier:Classifier.t ->
  icc:Icc.t ->
  machines:string list ->
  pins:(string -> string option) ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  t
(** [machines] must contain at least two names; the first is the
    machine the main program runs on. [pins] maps a component class
    name to the machine it must live on ([None] = free); a pin naming
    an unknown machine raises [Invalid_argument]. Non-remotable
    interfaces co-locate their endpoints, as in the two-way engine. *)

val predicted_assignment_us :
  Icc_graph.t -> Icc_graph.pricing -> assignment:(int -> int) -> float
(** Predicted communication time (µs) of an arbitrary node-to-machine
    assignment over a priced abstract graph: the cost of every pair
    whose endpoints land on different machines, summed in segment
    order. The node space is the graph's (classifications then main);
    machine ids are caller-chosen — the pool-elastic fallback ladder
    prices its k-host shard placements through this with hosts as
    machines. *)

val machine_of : t -> int -> string
(** Machine of a classification; out-of-range classifications (new at
    run time) land on the main program's machine. *)

val machine_histogram : t -> (string * int) list
(** Classifications per machine, in machine order. *)
