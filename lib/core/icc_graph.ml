open Coign_util
open Coign_netsim

(* Flat CSR form: pairs as parallel endpoint arrays, segments as an
   offset array over flat (size index, count) item arrays. One segment
   per a<>b ICC entry, in entry order; sizes are interned into a shared
   dictionary so pricing is one prediction per distinct size. *)
type t = {
  n : int;
  pair_a : int array;
  pair_b : int array;
  non_remotable : bool array;
  seg_pair : int array;      (* pair id per segment, in entry order *)
  seg_first : int array;     (* length nsegs + 1; items of segment s are
                                seg_first.(s) .. seg_first.(s+1)-1 *)
  item_size : int array;     (* indices into [sizes] *)
  item_count : float array;  (* message count per item, as float *)
  sizes : int array;         (* distinct rounded bucket-mean sizes *)
}

type pricing = { pair_us : float array; seg_us : float array }

let classification_count t = t.n
let main_node t = t.n
let pair_count t = Array.length t.pair_a
let pair t p = (t.pair_a.(p), t.pair_b.(p))
let pair_non_remotable t p = t.non_remotable.(p)
let segment_count t = Array.length t.seg_pair
let size_count t = Array.length t.sizes

let iter_pairs t f =
  for p = 0 to Array.length t.pair_a - 1 do
    f p ~a:t.pair_a.(p) ~b:t.pair_b.(p) ~non_remotable:t.non_remotable.(p)
  done

let build ~classifier ~icc =
  let n = Classifier.classification_count classifier in
  let node_of c = if c < 0 then n else c in
  let pair_ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let pair_rev = ref [] and npairs = ref 0 in
  let non_remotable_ids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let size_ids : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let size_rev = ref [] and nsizes = ref 0 in
  (* Segments accumulate in reverse entry order; items in reverse item
     order within each segment, flattened at the end. *)
  let seg_rev = ref [] and nsegs = ref 0 and nitems = ref 0 in
  let intern_size s =
    match Hashtbl.find_opt size_ids s with
    | Some i -> i
    | None ->
        let i = !nsizes in
        incr nsizes;
        Hashtbl.add size_ids s i;
        size_rev := s :: !size_rev;
        i
  in
  List.iter
    (fun (e : Icc.entry) ->
      let a = node_of e.Icc.src and b = node_of e.Icc.dst in
      if a <> b then begin
        let key = (min a b, max a b) in
        let pid =
          match Hashtbl.find_opt pair_ids key with
          | Some id -> id
          | None ->
              let id = !npairs in
              incr npairs;
              Hashtbl.add pair_ids key id;
              pair_rev := key :: !pair_rev;
              id
        in
        if not e.Icc.remotable then Hashtbl.replace non_remotable_ids pid ();
        let items, count =
          Exp_bucket.fold
            (fun ~index ~count ~bytes:_ (acc, k) ->
              let mean = Exp_bucket.mean_bytes_in_bucket e.Icc.messages index in
              ( (intern_size (int_of_float (Float.round mean)), float_of_int count)
                :: acc,
                k + 1 ))
            e.Icc.messages ([], 0)
        in
        seg_rev := (pid, count, items) :: !seg_rev;
        incr nsegs;
        nitems := !nitems + count
      end)
    (Icc.entries icc);
  let seg_pair = Array.make !nsegs 0 in
  let seg_first = Array.make (!nsegs + 1) 0 in
  let item_size = Array.make !nitems 0 in
  let item_count = Array.make !nitems 0. in
  seg_first.(!nsegs) <- !nitems;
  (* Walk the reversed segment list back to front, filling items from
     the tail; within a segment the reversed item list unreverses the
     same way. *)
  let pos = ref !nitems in
  let si = ref !nsegs in
  List.iter
    (fun (pid, count, items) ->
      decr si;
      seg_pair.(!si) <- pid;
      seg_first.(!si) <- !pos - count;
      List.iter
        (fun (size, cnt) ->
          decr pos;
          item_size.(!pos) <- size;
          item_count.(!pos) <- cnt)
        items)
    !seg_rev;
  let pairs = Array.of_list (List.rev !pair_rev) in
  {
    n;
    pair_a = Array.map fst pairs;
    pair_b = Array.map snd pairs;
    non_remotable = Array.init !npairs (Hashtbl.mem non_remotable_ids);
    seg_pair;
    seg_first;
    item_size;
    item_count;
    sizes = Array.of_list (List.rev !size_rev);
  }

let cost_table t compiled =
  Array.map (fun bytes -> Net_profiler.predict_compiled_us compiled ~bytes) t.sizes

let price_into t ~cost pricing =
  Array.fill pricing.pair_us 0 (Array.length pricing.pair_us) 0.;
  (* Segment order is entry order; within a segment, bucket order —
     the same float additions, in the same order, the one-stage
     engine performed, so costs match it bit for bit. *)
  for s = 0 to Array.length t.seg_pair - 1 do
    let total = ref 0. in
    for i = t.seg_first.(s) to t.seg_first.(s + 1) - 1 do
      total := !total +. (t.item_count.(i) *. cost.(t.item_size.(i)))
    done;
    pricing.pair_us.(t.seg_pair.(s)) <- pricing.pair_us.(t.seg_pair.(s)) +. !total;
    pricing.seg_us.(s) <- !total
  done

type scale = { sc_messages : float array; sc_bytes : float array }

let price_scaled_into t ~cost ~zero_us ~scale pricing =
  (* [price_into] with each pair's traffic rescaled: segment s's
     per-message fixed cost (count · zero_us) follows the pair's
     message multiplier, the size-dependent remainder follows its byte
     multiplier. Equal multipliers collapse to one multiply of the
     profiled total, so an all-ones scale reproduces [price_into] bit
     for bit (×1.0 is exact); the unscaled path still keeps its own
     loop. *)
  if
    Array.length scale.sc_messages <> Array.length t.pair_a
    || Array.length scale.sc_bytes <> Array.length t.pair_a
  then invalid_arg "Icc_graph.price_scaled_into: scale length <> pair count";
  Array.fill pricing.pair_us 0 (Array.length pricing.pair_us) 0.;
  for s = 0 to Array.length t.seg_pair - 1 do
    let total = ref 0. and msgs = ref 0. in
    for i = t.seg_first.(s) to t.seg_first.(s + 1) - 1 do
      total := !total +. (t.item_count.(i) *. cost.(t.item_size.(i)));
      msgs := !msgs +. t.item_count.(i)
    done;
    let pid = t.seg_pair.(s) in
    let ms = scale.sc_messages.(pid) and bs = scale.sc_bytes.(pid) in
    let scaled =
      if ms = bs then !total *. ms
      else
        let fixed = !msgs *. zero_us in
        (ms *. fixed) +. (bs *. (!total -. fixed))
    in
    pricing.pair_us.(pid) <- pricing.pair_us.(pid) +. scaled;
    pricing.seg_us.(s) <- scaled
  done

let pair_messages t =
  let m = Array.make (Array.length t.pair_a) 0. in
  for s = 0 to Array.length t.seg_pair - 1 do
    let total = ref 0. in
    for i = t.seg_first.(s) to t.seg_first.(s + 1) - 1 do
      total := !total +. t.item_count.(i)
    done;
    m.(t.seg_pair.(s)) <- m.(t.seg_pair.(s)) +. !total
  done;
  m

let pair_bytes t =
  let m = Array.make (Array.length t.pair_a) 0. in
  for s = 0 to Array.length t.seg_pair - 1 do
    let total = ref 0. in
    for i = t.seg_first.(s) to t.seg_first.(s + 1) - 1 do
      total := !total +. (t.item_count.(i) *. float_of_int t.sizes.(t.item_size.(i)))
    done;
    m.(t.seg_pair.(s)) <- m.(t.seg_pair.(s)) +. !total
  done;
  m

let make_pricing t =
  {
    pair_us = Array.make (Array.length t.pair_a) 0.;
    seg_us = Array.make (Array.length t.seg_pair) 0.;
  }

let price t ~net =
  let cost = cost_table t (Net_profiler.compile net) in
  let pricing = make_pricing t in
  price_into t ~cost pricing;
  pricing

let predicted_us t pricing ~separated =
  let total = ref 0. in
  for s = 0 to Array.length t.seg_pair - 1 do
    if separated t.seg_pair.(s) then total := !total +. pricing.seg_us.(s)
  done;
  !total
