open Coign_util
open Coign_netsim

type segment = {
  sg_pair : int;
  sg_sizes : int array;    (* indices into [sizes] *)
  sg_counts : float array; (* message count per item, as float *)
}

type t = {
  n : int;
  pairs : (int * int) array;
  non_remotable : bool array;
  segments : segment array;  (* one per a<>b ICC entry, in entry order *)
  sizes : int array;         (* distinct rounded bucket-mean sizes *)
}

type pricing = { pair_us : float array; seg_us : float array }

let classification_count t = t.n
let main_node t = t.n
let pair_count t = Array.length t.pairs
let pair t p = t.pairs.(p)
let pair_non_remotable t p = t.non_remotable.(p)

let iter_pairs t f =
  Array.iteri (fun p (a, b) -> f p ~a ~b ~non_remotable:t.non_remotable.(p)) t.pairs

let build ~classifier ~icc =
  let n = Classifier.classification_count classifier in
  let node_of c = if c < 0 then n else c in
  let pair_ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let pair_rev = ref [] and npairs = ref 0 in
  let non_remotable_ids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let size_ids : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let size_rev = ref [] and nsizes = ref 0 in
  let seg_rev = ref [] in
  let intern_size s =
    match Hashtbl.find_opt size_ids s with
    | Some i -> i
    | None ->
        let i = !nsizes in
        incr nsizes;
        Hashtbl.add size_ids s i;
        size_rev := s :: !size_rev;
        i
  in
  List.iter
    (fun (e : Icc.entry) ->
      let a = node_of e.Icc.src and b = node_of e.Icc.dst in
      if a <> b then begin
        let key = (min a b, max a b) in
        let pid =
          match Hashtbl.find_opt pair_ids key with
          | Some id -> id
          | None ->
              let id = !npairs in
              incr npairs;
              Hashtbl.add pair_ids key id;
              pair_rev := key :: !pair_rev;
              id
        in
        if not e.Icc.remotable then Hashtbl.replace non_remotable_ids pid ();
        let items =
          Exp_bucket.fold
            (fun ~index ~count ~bytes:_ acc ->
              let mean = Exp_bucket.mean_bytes_in_bucket e.Icc.messages index in
              (intern_size (int_of_float (Float.round mean)), float_of_int count) :: acc)
            e.Icc.messages []
        in
        let items = Array.of_list (List.rev items) in
        seg_rev :=
          { sg_pair = pid; sg_sizes = Array.map fst items; sg_counts = Array.map snd items }
          :: !seg_rev
      end)
    (Icc.entries icc);
  {
    n;
    pairs = Array.of_list (List.rev !pair_rev);
    non_remotable = Array.init !npairs (Hashtbl.mem non_remotable_ids);
    segments = Array.of_list (List.rev !seg_rev);
    sizes = Array.of_list (List.rev !size_rev);
  }

let price t ~net =
  let compiled = Net_profiler.compile net in
  let cost = Array.map (fun bytes -> Net_profiler.predict_compiled_us compiled ~bytes) t.sizes in
  let pair_us = Array.make (Array.length t.pairs) 0. in
  let seg_us = Array.make (Array.length t.segments) 0. in
  (* Segment order is entry order; within a segment, bucket order —
     the same float additions, in the same order, the one-stage
     engine performed, so costs match it bit for bit. *)
  for s = 0 to Array.length t.segments - 1 do
    let sg = t.segments.(s) in
    let total = ref 0. in
    for i = 0 to Array.length sg.sg_sizes - 1 do
      total := !total +. (sg.sg_counts.(i) *. cost.(sg.sg_sizes.(i)))
    done;
    pair_us.(sg.sg_pair) <- pair_us.(sg.sg_pair) +. !total;
    seg_us.(s) <- !total
  done;
  { pair_us; seg_us }

let predicted_us t pricing ~separated =
  let total = ref 0. in
  Array.iteri
    (fun i sg -> if separated sg.sg_pair then total := !total +. pricing.seg_us.(i))
    t.segments;
  !total
