(* Precomputed fallback distributions for the adaptive resilience layer.

   At analysis time we already hold the network-independent abstract ICC
   graph inside an [Analysis.Session]; re-pricing it under per-failure-
   mode network profiles is cheap (PR 2's two-stage engine) and yields a
   ranked ladder of alternative distributions the RTE can fail over to
   when the link degrades at run time.  Every rung passes the same
   pre-cut validation as the primary cut, so failover never lands on a
   placement the lint would have rejected. *)

module Net_profiler = Coign_netsim.Net_profiler

type rung = { rg_name : string; rg_distribution : Analysis.distribution }

type t = {
  fb_rungs : rung array; (* rung 0 is the primary distribution *)
  fb_migration_safe : bool array; (* indexed by classification *)
}

exception Invalid of string

let rung_count t = Array.length t.fb_rungs
let rung t i = t.fb_rungs.(i)
let migration_safe t c = c >= 0 && c < Array.length t.fb_migration_safe && t.fb_migration_safe.(c)
let migration_safety_table t = Array.copy t.fb_migration_safe

let migration_safety = Analysis.Session.migration_safety

let default_modes net =
  [ ("lossy", Net_profiler.degrade net); ("partition", Net_profiler.link_down net) ]

let compute ?algorithm ?profiler ?metrics ?pool ?modes ?primary session ~net () =
  let primary =
    match primary with
    | Some d -> d
    | None -> Analysis.Session.solve ?algorithm ?profiler ?metrics session ~net
  in
  let modes = match modes with Some m -> m | None -> default_modes net in
  let classifier = Analysis.Session.classifier session in
  let constraints = Analysis.Session.constraints session in
  let checked name d =
    match Analysis.validate ~classifier ~constraints d with
    | [] -> { rg_name = name; rg_distribution = d }
    | v :: _ ->
        raise
          (Invalid
             (Format.asprintf "fallback rung %s: %a" name Analysis.pp_violation v))
  in
  let rungs = ref [ checked "primary" primary ] in
  let add name d =
    if
      not
        (List.exists
           (fun r -> r.rg_distribution.Analysis.placement = d.Analysis.placement)
           !rungs)
    then rungs := checked name d :: !rungs
  in
  (* Rung pricing can fan out across domains; the distributions come
     back in mode order, so the dedup fold below — and therefore the
     ladder — is identical to the sequential build. *)
  let mode_dists =
    Analysis.Session.solve_many ?algorithm ?profiler ?metrics ?pool session
      ~nets:(List.map snd modes)
  in
  List.iter2 (fun (name, _) d -> add name d) modes mode_dists;
  (* Terminal rung: everything on the client.  Location pins are
     deliberately waived here — a Server pin presumes a reachable
     server, and this rung exists precisely for when there is none.
     With no placement remote, remotability and co-location hold
     trivially, so the rung is valid by construction. *)
  let n = Analysis.Session.node_count session in
  let all_client =
    {
      Analysis.placement = Array.make n Constraints.Client;
      cut_ns = 0;
      predicted_comm_us = 0.;
      server_count = 0;
      node_count = n;
      algorithm = primary.Analysis.algorithm;
    }
  in
  if
    not
      (List.exists
         (fun r -> r.rg_distribution.Analysis.placement = all_client.Analysis.placement)
         !rungs)
  then rungs := { rg_name = "all-client"; rg_distribution = all_client } :: !rungs;
  {
    fb_rungs = Array.of_list (List.rev !rungs);
    fb_migration_safe = migration_safety session;
  }

let of_rungs ~migration_safe rungs =
  if rungs = [] then raise (Invalid "fallback ladder needs at least one rung");
  { fb_rungs = Array.of_list rungs; fb_migration_safe = migration_safe }

let encode t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Array.length t.fb_rungs)
       (Array.length t.fb_migration_safe));
  Array.iter
    (fun safe -> Buffer.add_char buf (if safe then '1' else '0'))
    t.fb_migration_safe;
  Buffer.add_char buf '\n';
  Array.iter
    (fun r ->
      Buffer.add_string buf r.rg_name;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Analysis.encode r.rg_distribution);
      Buffer.add_char buf '\n')
    t.fb_rungs;
  Buffer.contents buf

type decode_error =
  | Truncated
  | Bad_header of string
  | Safety_mismatch of { expected : int; got : int }
  | Truncated_rung of int
  | Bad_rung of { rung : int; msg : string }
  | Rung_node_count of { rung : int; expected : int; got : int }
  | Duplicate_placement of { rung : int; first : int }

let decode_error_message = function
  | Truncated -> "truncated ladder"
  | Bad_header h -> Printf.sprintf "bad header %S" h
  | Safety_mismatch { expected; got } ->
      Printf.sprintf "safety table is %d entries, header said %d" got expected
  | Truncated_rung i -> Printf.sprintf "truncated rung %d" i
  | Bad_rung { rung; msg } -> Printf.sprintf "rung %d: %s" rung msg
  | Rung_node_count { rung; expected; got } ->
      Printf.sprintf
        "rung %d places %d classifications, safety table covers %d \
         (out-of-range classification ids)"
        rung got expected
  | Duplicate_placement { rung; first } ->
      Printf.sprintf "rung %d duplicates the placement of rung %d" rung first

exception Decode_error of decode_error

let () =
  Printexc.register_printer (function
    | Decode_error e -> Some ("Fallback.decode: " ^ decode_error_message e)
    | _ -> None)

let decode s =
  let fail e = raise (Decode_error e) in
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: safe_line :: rest -> (
      match String.split_on_char ' ' header with
      | [ k; n ] ->
          let int raw =
            match int_of_string_opt raw with
            | Some v -> v
            | None -> fail (Bad_header header)
          in
          let k = int k and n = int n in
          if k < 1 || n < 0 then fail (Bad_header header);
          if String.length safe_line <> n then
            fail (Safety_mismatch { expected = n; got = String.length safe_line });
          let migration_safe = Array.init n (fun i -> safe_line.[i] = '1') in
          let rec take acc i lines =
            if i = k then List.rev acc
            else
              match lines with
              | name :: dist_header :: placement :: tl ->
                  let d =
                    match Analysis.decode (dist_header ^ "\n" ^ placement) with
                    | d -> d
                    | exception (Invalid_argument msg | Failure msg) ->
                        fail (Bad_rung { rung = i; msg })
                  in
                  if d.Analysis.node_count <> n then
                    fail
                      (Rung_node_count
                         { rung = i; expected = n; got = d.Analysis.node_count });
                  take ({ rg_name = name; rg_distribution = d } :: acc) (i + 1) tl
              | _ -> fail (Truncated_rung i)
          in
          let rungs = take [] 0 rest in
          List.iteri
            (fun i r ->
              List.iteri
                (fun j r' ->
                  if
                    j < i
                    && r'.rg_distribution.Analysis.placement
                       = r.rg_distribution.Analysis.placement
                  then fail (Duplicate_placement { rung = i; first = j }))
                rungs)
            rungs;
          { fb_rungs = Array.of_list rungs; fb_migration_safe = migration_safe }
      | _ -> fail (Bad_header header))
  | _ -> fail Truncated

(* --- pool-elastic ladder ------------------------------------------- *)

type pool_rung = {
  pr_name : string;
  pr_distribution : Analysis.distribution;
  pr_shape : Pool.shape;
  pr_shard_of : int array;
  pr_shard_count : int;
  pr_replicated : bool array;
  pr_predicted_us : float;
}

type pool_ladder = {
  pl_rungs : pool_rung array;
  pl_component : int array;
  pl_base : t;
}

(* Server-side classifications must shard at component granularity: a
   non-remotable edge or a co-location constraint between two
   classifications means separating them across pool hosts would fault
   (or violate the constraint) exactly as separating them across the
   client/server cut would.  Components are the connected parts of the
   union of non-remotable graph pairs, explicit classification
   co-location pairs, and class-level co-location pairs resolved
   through the classifier.  Union-by-minimum keeps every component's
   representative equal to its smallest member — a stable key for the
   shard map. *)
let components session =
  let graph = Analysis.Session.graph session in
  let n = Icc_graph.classification_count graph in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union a b =
    if a >= 0 && b >= 0 && a < n && b < n then begin
      let ra = find a and rb = find b in
      if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
    end
  in
  Icc_graph.iter_pairs graph (fun _ ~a ~b ~non_remotable ->
      if non_remotable then union a b);
  let constraints = Analysis.Session.constraints session in
  List.iter (fun (a, b) -> union a b) (Constraints.colocated_pairs constraints);
  let class_pairs = Constraints.colocated_class_pairs constraints in
  if class_pairs <> [] then begin
    let classifier = Analysis.Session.classifier session in
    let members name =
      let out = ref [] in
      for c = n - 1 downto 0 do
        if String.equal (Classifier.class_of_classification classifier c) name then
          out := c :: !out
      done;
      !out
    in
    List.iter
      (fun (x, y) ->
        match members x @ members y with
        | [] -> ()
        | first :: rest -> List.iter (union first) rest)
      class_pairs
  end;
  Array.init n find

let pool_rung ~name ~graph ~pricing ~component ~comp_safe ~shape dist =
  let n = Array.length component in
  let map = shape.Pool.sh_map in
  let shard_count = Pool.shard_count map in
  let shard_of = Array.make n (-1) in
  let replicated = Array.make shard_count true in
  Array.iteri
    (fun c loc ->
      if c < n && loc = Constraints.Server then begin
        let rep = component.(c) in
        (* Migration-unsafe components are pinned to shard 0: they can
           never be promoted or moved live, so they stay with the
           pool's anchor host and shard 0 runs unreplicated. *)
        let s = if comp_safe.(rep) then Pool.shard_of map rep else 0 in
        shard_of.(c) <- s;
        if not comp_safe.(rep) then replicated.(s) <- false
      end)
    dist.Analysis.placement;
  let assignment v =
    if v < 0 || v >= n then -1
    else if shard_of.(v) < 0 then -1
    else Pool.host_of shape shard_of.(v)
  in
  let predicted = Multiway_analysis.predicted_assignment_us graph pricing ~assignment in
  {
    pr_name = name;
    pr_distribution = dist;
    pr_shape = shape;
    pr_shard_of = shard_of;
    pr_shard_count = shard_count;
    pr_replicated = replicated;
    pr_predicted_us = predicted;
  }

let pool_ladder ?(replicas = 2) ?map ~hosts session ~net base =
  if hosts < 1 then raise (Invalid "pool ladder: hosts < 1");
  if replicas < 1 then raise (Invalid "pool ladder: replicas < 1");
  let graph = Analysis.Session.graph session in
  let n = Icc_graph.classification_count graph in
  let pricing = Icc_graph.price graph ~net in
  let component = components session in
  let comp_safe = Array.make n true in
  Array.iteri
    (fun c rep ->
      if not (migration_safe base c) then comp_safe.(rep) <- false)
    component;
  let map = match map with Some m -> (Pool.shape ~map:m hosts).Pool.sh_map | None -> Pool.Hash hosts in
  let rung_at ~name ~k dist =
    let shape = Pool.shape ~replicas:(min replicas k) ~map k in
    pool_rung ~name ~graph ~pricing ~component ~comp_safe ~shape dist
  in
  let primary = base.fb_rungs.(0).rg_distribution in
  let wide =
    List.init (max 0 (hosts - 1)) (fun i ->
        let k = hosts - i in
        rung_at ~name:(Printf.sprintf "pool-%d" k) ~k primary)
  in
  let narrow =
    Array.to_list
      (Array.map (fun r -> rung_at ~name:r.rg_name ~k:1 r.rg_distribution) base.fb_rungs)
  in
  { pl_rungs = Array.of_list (wide @ narrow); pl_component = component; pl_base = base }

let pool_rung_count pl = Array.length pl.pl_rungs
let pool_rung_at pl i = pl.pl_rungs.(i)
let pool_base pl = pl.pl_base
let pool_components pl = Array.copy pl.pl_component

let pp_pool ppf pl =
  Format.fprintf ppf "@[<v>pool ladder of %d rung(s):" (Array.length pl.pl_rungs);
  Array.iteri
    (fun i r ->
      let replicated =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.pr_replicated
      in
      Format.fprintf ppf "@,  %d %-10s %a  shards=%d (%d replicated) predicted=%.1fus" i
        r.pr_name Pool.pp r.pr_shape r.pr_shard_count replicated r.pr_predicted_us)
    pl.pl_rungs;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>ladder of %d rung(s):" (Array.length t.fb_rungs);
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "@,  %d %-10s server=%d/%d predicted=%.1fus" i r.rg_name
        r.rg_distribution.Analysis.server_count r.rg_distribution.Analysis.node_count
        r.rg_distribution.Analysis.predicted_comm_us)
    t.fb_rungs;
  let unsafe =
    Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 t.fb_migration_safe
  in
  Format.fprintf ppf "@,  %d/%d classifications migration-unsafe@]" unsafe
    (Array.length t.fb_migration_safe)
