(* Precomputed fallback distributions for the adaptive resilience layer.

   At analysis time we already hold the network-independent abstract ICC
   graph inside an [Analysis.Session]; re-pricing it under per-failure-
   mode network profiles is cheap (PR 2's two-stage engine) and yields a
   ranked ladder of alternative distributions the RTE can fail over to
   when the link degrades at run time.  Every rung passes the same
   pre-cut validation as the primary cut, so failover never lands on a
   placement the lint would have rejected. *)

module Net_profiler = Coign_netsim.Net_profiler

type rung = { rg_name : string; rg_distribution : Analysis.distribution }

type t = {
  fb_rungs : rung array; (* rung 0 is the primary distribution *)
  fb_migration_safe : bool array; (* indexed by classification *)
}

exception Invalid of string

let rung_count t = Array.length t.fb_rungs
let rung t i = t.fb_rungs.(i)
let migration_safe t c = c >= 0 && c < Array.length t.fb_migration_safe && t.fb_migration_safe.(c)
let migration_safety_table t = Array.copy t.fb_migration_safe

let migration_safety = Analysis.Session.migration_safety

let default_modes net =
  [ ("lossy", Net_profiler.degrade net); ("partition", Net_profiler.link_down net) ]

let compute ?algorithm ?profiler ?metrics ?pool ?modes ?primary session ~net () =
  let primary =
    match primary with
    | Some d -> d
    | None -> Analysis.Session.solve ?algorithm ?profiler ?metrics session ~net
  in
  let modes = match modes with Some m -> m | None -> default_modes net in
  let classifier = Analysis.Session.classifier session in
  let constraints = Analysis.Session.constraints session in
  let checked name d =
    match Analysis.validate ~classifier ~constraints d with
    | [] -> { rg_name = name; rg_distribution = d }
    | v :: _ ->
        raise
          (Invalid
             (Format.asprintf "fallback rung %s: %a" name Analysis.pp_violation v))
  in
  let rungs = ref [ checked "primary" primary ] in
  let add name d =
    if
      not
        (List.exists
           (fun r -> r.rg_distribution.Analysis.placement = d.Analysis.placement)
           !rungs)
    then rungs := checked name d :: !rungs
  in
  (* Rung pricing can fan out across domains; the distributions come
     back in mode order, so the dedup fold below — and therefore the
     ladder — is identical to the sequential build. *)
  let mode_dists =
    Analysis.Session.solve_many ?algorithm ?profiler ?metrics ?pool session
      ~nets:(List.map snd modes)
  in
  List.iter2 (fun (name, _) d -> add name d) modes mode_dists;
  (* Terminal rung: everything on the client.  Location pins are
     deliberately waived here — a Server pin presumes a reachable
     server, and this rung exists precisely for when there is none.
     With no placement remote, remotability and co-location hold
     trivially, so the rung is valid by construction. *)
  let n = Analysis.Session.node_count session in
  let all_client =
    {
      Analysis.placement = Array.make n Constraints.Client;
      cut_ns = 0;
      predicted_comm_us = 0.;
      server_count = 0;
      node_count = n;
      algorithm = primary.Analysis.algorithm;
    }
  in
  if
    not
      (List.exists
         (fun r -> r.rg_distribution.Analysis.placement = all_client.Analysis.placement)
         !rungs)
  then rungs := { rg_name = "all-client"; rg_distribution = all_client } :: !rungs;
  {
    fb_rungs = Array.of_list (List.rev !rungs);
    fb_migration_safe = migration_safety session;
  }

let of_rungs ~migration_safe rungs =
  if rungs = [] then raise (Invalid "fallback ladder needs at least one rung");
  { fb_rungs = Array.of_list rungs; fb_migration_safe = migration_safe }

let encode t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Array.length t.fb_rungs)
       (Array.length t.fb_migration_safe));
  Array.iter
    (fun safe -> Buffer.add_char buf (if safe then '1' else '0'))
    t.fb_migration_safe;
  Buffer.add_char buf '\n';
  Array.iter
    (fun r ->
      Buffer.add_string buf r.rg_name;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Analysis.encode r.rg_distribution);
      Buffer.add_char buf '\n')
    t.fb_rungs;
  Buffer.contents buf

let decode s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: safe_line :: rest -> (
      match String.split_on_char ' ' header with
      | [ k; n ] ->
          let k = int_of_string k and n = int_of_string n in
          if String.length safe_line <> n then
            invalid_arg "Fallback.decode: safety length mismatch";
          let migration_safe = Array.init n (fun i -> safe_line.[i] = '1') in
          let rec take acc i lines =
            if i = k then List.rev acc
            else
              match lines with
              | name :: dist_header :: placement :: tl ->
                  let d = Analysis.decode (dist_header ^ "\n" ^ placement) in
                  take ({ rg_name = name; rg_distribution = d } :: acc) (i + 1) tl
              | _ -> invalid_arg "Fallback.decode: truncated rung"
          in
          { fb_rungs = Array.of_list (take [] 0 rest); fb_migration_safe = migration_safe }
      | _ -> invalid_arg "Fallback.decode: bad header")
  | _ -> invalid_arg "Fallback.decode: truncated"

let pp ppf t =
  Format.fprintf ppf "@[<v>ladder of %d rung(s):" (Array.length t.fb_rungs);
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "@,  %d %-10s server=%d/%d predicted=%.1fus" i r.rg_name
        r.rg_distribution.Analysis.server_count r.rg_distribution.Analysis.node_count
        r.rg_distribution.Analysis.predicted_comm_us)
    t.fb_rungs;
  let unsafe =
    Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 t.fb_migration_safe
  in
  Format.fprintf ppf "@,  %d/%d classifications migration-unsafe@]" unsafe
    (Array.length t.fb_migration_safe)
