open Coign_idl
open Coign_image

type severity = Info | Warning | Error

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

type diagnostic = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
}

exception Rejected of diagnostic list

let diag code severity subject message = { code; severity; subject; message }

let order =
  List.sort (fun a b ->
      compare (a.code, a.subject, a.message) (b.code, b.subject, b.message))

let rec has_recursive_marker = function
  | Idl_type.Opaque tag -> tag = Image_meta.recursive_marker
  | Idl_type.Array u | Idl_type.Ptr u -> has_recursive_marker u
  | Idl_type.Struct fields -> List.exists (fun (_, u) -> has_recursive_marker u) fields
  | Idl_type.Void | Idl_type.Int32 | Idl_type.Int64 | Idl_type.Double
  | Idl_type.Bool | Idl_type.Str | Idl_type.Blob | Idl_type.Iface _ ->
      false

let method_has_marker (m : Idl_type.method_sig) =
  has_recursive_marker m.Idl_type.ret
  || List.exists (fun (p : Idl_type.param) -> has_recursive_marker p.Idl_type.pty) m.Idl_type.params

let comma = String.concat ", "

let lint_meta (m : Image_meta.t) =
  let flow = Interface_flow.analyze m in
  let non_remotable = Interface_flow.non_remotable_ifaces flow in
  let is_non_remotable name = List.mem name non_remotable in
  let per_iface f = List.concat_map f m.Image_meta.ifaces in
  let cg001 =
    per_iface (fun i ->
        match
          List.filter
            (fun ms -> not (Idl_type.method_remotable ms))
            i.Image_meta.if_methods
        with
        | [] -> []
        | bad ->
            [
              diag "CG001" Warning i.Image_meta.if_name
                (Printf.sprintf
                   "non-remotable method%s on exported interface: %s"
                   (if List.length bad > 1 then "s" else "")
                   (comma (List.map (fun ms -> ms.Idl_type.mname) bad)));
            ])
  in
  let cg002 =
    (* An interface that is itself remotable but hands around pointers
       to a non-remotable one lets the opaque handle escape one hop
       further than CG001 shows. *)
    per_iface (fun i ->
        if is_non_remotable i.Image_meta.if_name then []
        else
          List.concat_map
            (fun ms ->
              List.filter_map
                (fun j ->
                  if is_non_remotable j then
                    Some
                      (diag "CG002" Warning i.Image_meta.if_name
                         (Printf.sprintf
                            "method %s passes non-remotable interface %s through a remotable interface"
                            ms.Idl_type.mname j))
                  else None)
                (Interface_flow.method_ifaces ms))
            i.Image_meta.if_methods)
  in
  let cg004 =
    List.map
      (fun cname ->
        diag "CG004" Warning cname
          "class is creatable but unreachable from the main program")
      (Interface_flow.unreachable_classes flow)
  in
  let cg005 =
    per_iface (fun i ->
        List.filter_map
          (fun ms ->
            if method_has_marker ms then
              Some
                (diag "CG005" Warning i.Image_meta.if_name
                   (Printf.sprintf
                      "method %s carries an unbounded recursive structure; treated as non-remotable"
                      ms.Idl_type.mname))
            else None)
          i.Image_meta.if_methods)
  in
  let cg006 =
    List.map
      (fun (a, b) ->
        diag "CG006" Info (a ^ " <-> " ^ b)
          "classes can exchange a non-remotable interface; constrained to the same machine")
      (Interface_flow.non_remotable_pairs flow)
    @ List.map
        (fun cname ->
          diag "CG006" Info
            (Coign_com.Runtime.main_class_name ^ " <-> " ^ cname)
            "main program can hold a non-remotable interface on this class; pinned to the client"
            )
        (Interface_flow.client_pins flow)
  in
  cg001 @ cg002 @ cg004 @ cg005 @ cg006

let lint_image (img : Binary_image.t) =
  let cg003 =
    List.filter_map
      (fun (cname, apis) ->
        let has k = List.exists (fun a -> Static_analysis.classify_api a = k) apis in
        if has Static_analysis.Gui && has Static_analysis.Storage then
          Some
            (diag "CG003" Warning cname
               "class references both GUI and storage APIs; GUI wins and the class is pinned to the client")
        else None)
      img.Binary_image.api_refs
  in
  let rest =
    match img.Binary_image.meta with
    | None ->
        [
          diag "CG000" Info img.Binary_image.img_name
            "image carries no static interface metadata; interface-flow checks skipped";
        ]
    | Some m -> lint_meta m
  in
  order (cg003 @ rest)

let worst diags =
  List.fold_left
    (fun acc d ->
      match (acc, d.severity) with
      | Some Error, _ | _, Error -> Some Error
      | Some Warning, _ | _, Warning -> Some Warning
      | _ -> Some d.severity)
    None diags

let pp_text ppf diags =
  List.iter
    (fun d ->
      Format.fprintf ppf "%s %s %s: %s@." (severity_name d.severity) d.code
        d.subject d.message)
    diags

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json diags =
  let field k v = Printf.sprintf "\"%s\":\"%s\"" k (json_escape v) in
  "["
  ^ String.concat ","
      (List.map
         (fun d ->
           "{"
           ^ String.concat ","
               [
                 field "code" d.code;
                 field "severity" (severity_name d.severity);
                 field "subject" d.subject;
                 field "message" d.message;
               ]
           ^ "}")
         diags)
  ^ "]"
