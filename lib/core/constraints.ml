type location = Client | Server

let location_name = function Client -> "client" | Server -> "server"

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

module Ipair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module Spair_set = Set.Make (struct
  type t = string * string

  let compare = compare
end)

type t = {
  by_class : location Smap.t;
  by_classification : location Imap.t;
  pairs : Ipair_set.t;  (* normalized (min, max) classification pairs *)
  class_pairs : Spair_set.t;  (* normalized (min, max) class-name pairs *)
}

let empty =
  {
    by_class = Smap.empty;
    by_classification = Imap.empty;
    pairs = Ipair_set.empty;
    class_pairs = Spair_set.empty;
  }

let conflict what a b =
  if a <> b then invalid_arg ("Constraints: conflicting pins for " ^ what);
  a

let pin_class t ~cname loc =
  let loc =
    match Smap.find_opt cname t.by_class with
    | Some existing -> conflict cname existing loc
    | None -> loc
  in
  { t with by_class = Smap.add cname loc t.by_class }

let pin_classification t c loc =
  let loc =
    match Imap.find_opt c t.by_classification with
    | Some existing -> conflict (Printf.sprintf "classification %d" c) existing loc
    | None -> loc
  in
  { t with by_classification = Imap.add c loc t.by_classification }

let colocate t a b =
  if a = b then t
  else { t with pairs = Ipair_set.add (min a b, max a b) t.pairs }

let colocate_classes t a b =
  if a = b then t
  else { t with class_pairs = Spair_set.add (min a b, max a b) t.class_pairs }

let of_image img =
  List.fold_left
    (fun t (cname, verdict) ->
      match verdict with
      | Static_analysis.Pin_client -> pin_class t ~cname Client
      | Static_analysis.Pin_server -> pin_class t ~cname Server
      | Static_analysis.Free -> t)
    empty
    (Static_analysis.image_verdicts img)

let merge a b =
  let by_class =
    Smap.union (fun cname la lb -> Some (conflict cname la lb)) a.by_class b.by_class
  in
  let by_classification =
    Imap.union
      (fun c la lb -> Some (conflict (Printf.sprintf "classification %d" c) la lb))
      a.by_classification b.by_classification
  in
  {
    by_class;
    by_classification;
    pairs = Ipair_set.union a.pairs b.pairs;
    class_pairs = Spair_set.union a.class_pairs b.class_pairs;
  }

let class_pin t ~cname = Smap.find_opt cname t.by_class
let classification_pin t c = Imap.find_opt c t.by_classification
let pinned_classifications t = Imap.bindings t.by_classification
let colocated_pairs t = Ipair_set.elements t.pairs
let colocated_class_pairs t = Spair_set.elements t.class_pairs
let pinned_classes t = Smap.bindings t.by_class
