(** Exponentially-decayed observation window over classification pairs
    (paper §6, online re-partitioning).

    The profile gives the analyzer absolute per-pair traffic; a running
    system needs "what is flowing {e now}". This window keeps one
    exponentially-decayed call counter and byte total per unordered
    (caller classification, callee classification) pair, timed on the
    virtual sim clock: a weight observed [half_life_us] ago counts half
    as much as one observed now.

    Pairs named at creation — in practice, the abstract ICC graph's
    pairs, in pair-id order — live in flat arrays so the watch loop can
    turn the window into an {!Icc_graph.price_scaled_into} scale vector
    without allocation games; pairs the profile never saw (fresh
    classifications at run time) accumulate on the side and surface in
    the drift signature.

    Decay is per-cell and lazy (each cell remembers its own last-update
    time), so an observation costs O(1) and reads are pure: snapshots at
    [now_us] never mutate the window. Everything is deterministic — no
    wall clock, no randomness. *)

type t

val create : half_life_us:float -> pairs:(int * int) array -> t
(** A window whose slot [s] tracks [pairs.(s)] (normalized to
    [(min, max)]). Raises [Invalid_argument] on a non-positive
    half-life or duplicate pairs. *)

val observe : t -> at_us:float -> caller:int -> callee:int -> bytes:int -> unit
(** Fold in one observation at virtual time [at_us]. Classification
    [-1] stands for the main program, as in {!Drift} signatures. *)

val add_bytes : t -> at_us:float -> caller:int -> callee:int -> bytes:int -> unit
(** Fold in bytes without a call count — for paths where message sizes
    only become known after the call was already counted (e.g. a tap
    that measures sizes on its sampled subset). *)

val slot_count : t -> int
val observed : t -> int
(** Raw (undecayed) observation count ever folded in. *)

val byte_observed : t -> int
(** Raw count of observations that carried a measured (positive) byte
    size — how much evidence backs the byte dimension. *)

val extra_pairs : t -> int
(** Distinct observed pairs outside the creation-time set. *)

val counts_at : t -> now_us:float -> float array
(** Per-slot decayed call counts as of [now_us] (slot order = creation
    [pairs] order). Pure. *)

val bytes_at : t -> now_us:float -> float array
(** Per-slot decayed byte totals as of [now_us]. Pure. *)

val extras_at : t -> now_us:float -> ((int * int) * float) list
(** Decayed counts of the out-of-profile pairs, sorted by pair. *)

val total_at : t -> now_us:float -> float
(** Total decayed mass (slots + extras) — the "how much evidence is in
    the window" gate for drift decisions. *)

val byte_total_at : t -> now_us:float -> float

val signature_at : t -> now_us:float -> Drift.signature
(** The window as a drift signature over unordered pairs (slots and
    extras, zero-weight cells dropped). *)

val byte_signature_at : t -> now_us:float -> Drift.signature
(** Like {!signature_at} but weighted by decayed byte totals instead
    of call counts — the dimension that moves when the call mix holds
    steady but payloads grow. *)
