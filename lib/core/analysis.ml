open Coign_util
open Coign_netsim
open Coign_flowgraph

type distribution = {
  placement : Constraints.location array;
  cut_ns : int;
  predicted_comm_us : float;
  server_count : int;
  node_count : int;
  algorithm : Mincut.algorithm;
}

let price_entry net (e : Icc.entry) =
  Exp_bucket.fold
    (fun ~index ~count ~bytes:_ acc ->
      let mean = Exp_bucket.mean_bytes_in_bucket e.Icc.messages index in
      acc
      +. (float_of_int count
         *. Net_profiler.predict_us net ~bytes:(int_of_float (Float.round mean))))
    e.Icc.messages 0.

let ns_of_us us = int_of_float (Float.round (us *. 1000.))

module Session = struct
  module R = Flow_network.Residual

  (* The network-dependent half of pricing, memoized per network
     profile (by physical identity — profiles are immutable records, so
     the same profile object always compiles to the same table). Sweeps
     and fallback ladders re-solve against a small set of profile
     objects, so the compile + per-size prediction work is paid once
     per profile instead of once per solve. *)
  let cost_cache_cap = 64

  type session = {
    s_classifier : Classifier.t;
    s_constraints : Constraints.t;
    s_graph : Icc_graph.t;
    s_client : int;  (* = main node of the abstract graph *)
    s_server : int;
    (* CSR flow arena holding every potential edge: infinite constraint
       edges plus one zero-capacity slot per priced traffic pair.
       Repricing writes capacities straight into the arena — no edge
       list is ever rebuilt. *)
    s_arena : R.g;
    s_scratch : Mincut.scratch;
    (* Pair ids whose capacity must be re-priced per network: the pairs
       not already held together by an infinite edge. *)
    s_priced : int array;
    s_arc_ab : int array;  (* per priced slot: arena arc a->b *)
    s_arc_ba : int array;  (* per priced slot: arena arc b->a *)
    s_caps : int array;    (* per priced slot: capacity of the last solve *)
    (* Static placement adjacency in CSR form over the n+2 nodes; a tag
       of -1 marks an infinite (constraint) edge, otherwise the priced
       slot whose current capacity decides whether the edge exists. *)
    s_adj_first : int array;
    s_adj_node : int array;
    s_adj_tag : int array;
    (* Per-solve scratch, preallocated once. *)
    s_seen : bool array;
    s_stack : int array;
    s_server_side : bool array;
    s_pricing : Icc_graph.pricing;
    (* cost table + zero-byte message cost, one entry per seen net *)
    mutable s_cost_cache : (Net_profiler.t * (float array * float)) list;
  }

  type t = session

  let classifier t = t.s_classifier
  let constraints t = t.s_constraints
  let node_count t = Icc_graph.classification_count t.s_graph
  let graph t = t.s_graph

  let build_session ~classifier ~icc ~constraints () =
    let graph = Icc_graph.build ~classifier ~icc in
    let n = Icc_graph.classification_count graph in
    (* Nodes: 0..n-1 classifications, n = client terminal (also the
       main program's node), n+1 = server. *)
    let client = n and server = n + 1 in
    let fixed = Array.make (Icc_graph.pair_count graph) false in
    let pair_id : (int * int, int) Hashtbl.t =
      Hashtbl.create (max 16 (2 * Icc_graph.pair_count graph))
    in
    Icc_graph.iter_pairs graph (fun p ~a ~b ~non_remotable:_ ->
        Hashtbl.replace pair_id (a, b) p);
    (* Infinite undirected edges, deduplicated: repeat constraints on
       one pair saturate at infinity_cap anyway, so one arena slot per
       unordered pair carries them all. *)
    let inf_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let inf_rev = ref [] in
    let add_infinite a b =
      let key = (min a b, max a b) in
      if not (Hashtbl.mem inf_seen key) then begin
        Hashtbl.add inf_seen key ();
        inf_rev := key :: !inf_rev
      end;
      (* An infinite edge dominates any finite traffic on the pair, so
         its price can never change the cut: skip it when repricing. *)
      match Hashtbl.find_opt pair_id key with
      | Some p -> fixed.(p) <- true
      | None -> ()
    in
    Icc_graph.iter_pairs graph (fun _ ~a ~b ~non_remotable ->
        if non_remotable then add_infinite a b);
    (* Constraint edges. *)
    let pin c loc =
      let terminal =
        match loc with Constraints.Client -> client | Constraints.Server -> server
      in
      add_infinite c terminal
    in
    for c = 0 to n - 1 do
      (match Constraints.classification_pin constraints c with
      | Some loc -> pin c loc
      | None -> ());
      match
        Constraints.class_pin constraints
          ~cname:(Classifier.class_of_classification classifier c)
      with
      | Some loc -> pin c loc
      | None -> ()
    done;
    List.iter
      (fun (a, b) -> if a >= 0 && a < n && b >= 0 && b < n then add_infinite a b)
      (Constraints.colocated_pairs constraints);
    (* Static class-pair co-location: every classification of one class
       must end up with every classification of the other. *)
    let classifications_of =
      let tbl : (string, int list) Hashtbl.t = Hashtbl.create 32 in
      for c = n - 1 downto 0 do
        let cname = Classifier.class_of_classification classifier c in
        Hashtbl.replace tbl cname
          (c :: Option.value ~default:[] (Hashtbl.find_opt tbl cname))
      done;
      fun cname -> Option.value ~default:[] (Hashtbl.find_opt tbl cname)
    in
    List.iter
      (fun (ca, cb) ->
        List.iter
          (fun a -> List.iter (fun b -> add_infinite a b) (classifications_of cb))
          (classifications_of ca))
      (Constraints.colocated_class_pairs constraints);
    let priced = ref [] in
    for p = Icc_graph.pair_count graph - 1 downto 0 do
      if not fixed.(p) then priced := p :: !priced
    done;
    let priced = Array.of_list !priced in
    let np = Array.length priced in
    let inf_pairs = Array.of_list (List.rev !inf_rev) in
    let ninf = Array.length inf_pairs in
    (* Directed edge list for the arena: both directions of every
       infinite edge and of every priced pair (the latter at capacity
       zero — inert until priced up). Sorted by (src, dst), the same
       order Flow_network.edges fed the legacy compile; the inert
       zero-capacity slots interleave without disturbing the relative
       order of live arcs, and a zero-residual arc is invisible to
       every solver, so traversals see exactly the legacy arc
       sequence. *)
    let nedges = 2 * (ninf + np) in
    let edges = Array.make (max 1 nedges) (0, 0, 0, -1) in
    Array.iteri
      (fun i (a, b) ->
        edges.(2 * i) <- (a, b, Flow_network.infinity_cap, -1);
        edges.((2 * i) + 1) <- (b, a, Flow_network.infinity_cap, -1))
      inf_pairs;
    Array.iteri
      (fun i p ->
        let a, b = Icc_graph.pair graph p in
        edges.((2 * ninf) + (2 * i)) <- (a, b, 0, i);
        edges.((2 * ninf) + (2 * i) + 1) <- (b, a, 0, i))
      priced;
    let edges = if nedges = 0 then [||] else edges in
    Array.sort compare edges;
    let arena, fwd =
      R.of_edges ~n:(n + 2) (Array.map (fun (s, d, c, _) -> (s, d, c)) edges)
    in
    let arc_ab = Array.make np 0 and arc_ba = Array.make np 0 in
    Array.iteri
      (fun i (src, dst, _, slot) ->
        if slot >= 0 then
          if src < dst then arc_ab.(slot) <- fwd.(i) else arc_ba.(slot) <- fwd.(i))
      edges;
    (* Placement adjacency CSR over the same undirected edge sets. *)
    let deg = Array.make (n + 2) 0 in
    let bump (a, b) =
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1
    in
    Array.iter bump inf_pairs;
    Array.iter (fun p -> bump (Icc_graph.pair graph p)) priced;
    let adj_first = Array.make (n + 3) 0 in
    for v = 1 to n + 2 do
      adj_first.(v) <- adj_first.(v - 1) + deg.(v - 1)
    done;
    let nadj = adj_first.(n + 2) in
    let adj_node = Array.make (max 1 nadj) 0 in
    let adj_tag = Array.make (max 1 nadj) 0 in
    let fill = Array.make (n + 2) 0 in
    let link a b tag =
      let i = adj_first.(a) + fill.(a) in
      fill.(a) <- fill.(a) + 1;
      adj_node.(i) <- b;
      adj_tag.(i) <- tag;
      let j = adj_first.(b) + fill.(b) in
      fill.(b) <- fill.(b) + 1;
      adj_node.(j) <- a;
      adj_tag.(j) <- tag
    in
    Array.iter (fun (a, b) -> link a b (-1)) inf_pairs;
    Array.iteri
      (fun i p ->
        let a, b = Icc_graph.pair graph p in
        link a b i)
      priced;
    {
      s_classifier = classifier;
      s_constraints = constraints;
      s_graph = graph;
      s_client = client;
      s_server = server;
      s_arena = arena;
      s_scratch = Mincut.scratch arena;
      s_priced = priced;
      s_arc_ab = arc_ab;
      s_arc_ba = arc_ba;
      s_caps = Array.make np 0;
      s_adj_first = adj_first;
      s_adj_node = adj_node;
      s_adj_tag = adj_tag;
      s_seen = Array.make (n + 2) false;
      s_stack = Array.make (n + 2) 0;
      s_server_side = Array.make (n + 2) false;
      s_pricing = Icc_graph.make_pricing graph;
      s_cost_cache = [];
    }

  let create ?profiler ~classifier ~icc ~constraints () =
    match profiler with
    | None -> build_session ~classifier ~icc ~constraints ()
    | Some p ->
        Coign_obs.Profiler.time p "icc_graph_build" (fun () ->
            build_session ~classifier ~icc ~constraints ())

  let copy t =
    let n2 = Icc_graph.classification_count t.s_graph + 2 in
    let arena = R.copy t.s_arena in
    {
      t with
      s_arena = arena;
      s_scratch = Mincut.scratch arena;
      s_caps = Array.copy t.s_caps;
      s_seen = Array.make n2 false;
      s_stack = Array.make n2 0;
      s_server_side = Array.make n2 false;
      s_pricing = Icc_graph.make_pricing t.s_graph;
      (* The cache list and its entries are immutable once published;
         sharing the snapshot lets a copied session skip re-compiling
         profiles the original already priced. *)
      s_cost_cache = t.s_cost_cache;
    }

  let cost_table_for t net =
    let rec find = function
      | [] ->
          let compiled = Net_profiler.compile net in
          let cost = Icc_graph.cost_table t.s_graph compiled in
          let zero = Net_profiler.predict_compiled_us compiled ~bytes:0 in
          let cache = t.s_cost_cache in
          let cache =
            if List.length cache >= cost_cache_cap then
              List.filteri (fun i _ -> i < cost_cache_cap - 1) cache
            else cache
          in
          t.s_cost_cache <- (net, (cost, zero)) :: cache;
          (cost, zero)
      | (key, entry) :: rest -> if key == net then entry else find rest
    in
    find t.s_cost_cache

  let solve ?(algorithm = Mincut.Relabel_to_front) ?profiler ?metrics ?scale t ~net =
    let timed name f =
      match profiler with None -> f () | Some p -> Coign_obs.Profiler.time p name f
    in
    let graph = t.s_graph in
    let n = Icc_graph.classification_count graph in
    let pricing =
      timed "pricing" (fun () ->
          let pricing = t.s_pricing in
          (* With ?scale, an observation window rescales each pair's
             profiled traffic before pricing (online re-partitioning);
             without it, the pricing loop is untouched and its floats
             are bit for bit the offline engine's. *)
          (match scale with
          | None -> Icc_graph.price_into graph ~cost:(fst (cost_table_for t net)) pricing
          | Some scale ->
              let cost, zero_us = cost_table_for t net in
              Icc_graph.price_scaled_into graph ~cost ~zero_us ~scale pricing);
          (* Reprice: write every non-fixed pair's capacity straight
             into its preallocated arena slots (clamped exactly as the
             legacy Hashtbl path clamped). Zero-cost pairs leave
             zero-capacity arcs, which no solver can traverse, so the
             usable edge set is exactly what a from-scratch build
             produces. *)
          for i = 0 to Array.length t.s_priced - 1 do
            let cap =
              min Flow_network.infinity_cap
                (ns_of_us pricing.Icc_graph.pair_us.(t.s_priced.(i)))
            in
            t.s_caps.(i) <- cap;
            R.set_arc_cap t.s_arena t.s_arc_ab.(i) cap;
            R.set_arc_cap t.s_arena t.s_arc_ba.(i) cap
          done;
          pricing)
    in
    timed "cut" @@ fun () ->
    (* A cut must exist even in a graph with no server-pinned component:
       terminals are always present (the cut just puts everything on
       the client). *)
    R.reset t.s_arena;
    let cut_ns =
      Mincut.run ~algorithm t.s_arena t.s_scratch ~s:t.s_client ~t:t.s_server
    in
    let source_side = t.s_seen in
    R.min_cut_side_into t.s_arena ~s:t.s_client ~seen:source_side ~stack:t.s_stack;
    (* A node the min cut leaves on the sink side belongs on the server
       only if it is actually connected to the server's side; components
       that never communicated are free and default to the client. *)
    let server_side = t.s_server_side in
    Array.fill server_side 0 (n + 2) false;
    server_side.(t.s_server) <- true;
    let queue = t.s_stack in
    queue.(0) <- t.s_server;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      for i = t.s_adj_first.(v) to t.s_adj_first.(v + 1) - 1 do
        let u = t.s_adj_node.(i) in
        let tag = t.s_adj_tag.(i) in
        if
          (tag < 0 || t.s_caps.(tag) > 0)
          && (not server_side.(u))
          && not source_side.(u)
        then begin
          server_side.(u) <- true;
          queue.(!tail) <- u;
          incr tail
        end
      done
    done;
    let placement =
      Array.init n (fun c ->
          if server_side.(c) then Constraints.Server else Constraints.Client)
    in
    let server_count =
      Array.fold_left
        (fun acc l -> if l = Constraints.Server then acc + 1 else acc)
        0 placement
    in
    let location_of_node v =
      if v < 0 || v >= n then Constraints.Client else placement.(v)
    in
    let predicted_comm_us =
      Icc_graph.predicted_us graph pricing ~separated:(fun p ->
          let a, b = Icc_graph.pair graph p in
          location_of_node a <> location_of_node b)
    in
    let d =
      {
        placement;
        cut_ns;
        predicted_comm_us;
        server_count;
        node_count = n;
        algorithm;
      }
    in
    (match metrics with
    | None -> ()
    | Some reg ->
        let open Coign_obs.Metrics in
        inc (counter reg ~help:"Partitioning solves completed." "coign_analysis_solves_total");
        set
          (gauge reg ~help:"Classification nodes in the last solve." "coign_analysis_nodes")
          (float_of_int n);
        set
          (gauge reg ~help:"Classifications the last solve placed on the server."
             "coign_analysis_server_count")
          (float_of_int server_count);
        set
          (gauge reg
             ~help:
               "Predicted cross-machine communication time of the last solve, in microseconds."
             "coign_analysis_predicted_comm_us")
          predicted_comm_us);
    d

  (* Static migration-safety facts for the resilience layer: a
     classification may be moved live between distributions only if it
     touches no non-remotable ICC edge and is not co-location-chained
     (transitively) to one that does — moving one end of such a chain
     would split the pair the constraint exists to keep whole. *)
  let migration_safety t =
    let graph = t.s_graph in
    let n = Icc_graph.classification_count graph in
    let safe = Array.make n true in
    Icc_graph.iter_pairs graph (fun _ ~a ~b ~non_remotable ->
        if non_remotable then begin
          if a < n then safe.(a) <- false;
          if b < n then safe.(b) <- false
        end);
    let adj = Array.make n [] in
    let link a b =
      if a >= 0 && a < n && b >= 0 && b < n && a <> b then begin
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b)
      end
    in
    List.iter (fun (a, b) -> link a b) (Constraints.colocated_pairs t.s_constraints);
    (match Constraints.colocated_class_pairs t.s_constraints with
    | [] -> ()
    | class_pairs ->
        let by_class = Hashtbl.create 16 in
        for c = 0 to n - 1 do
          let cname = Classifier.class_of_classification t.s_classifier c in
          Hashtbl.replace by_class cname
            (c :: Option.value ~default:[] (Hashtbl.find_opt by_class cname))
        done;
        let of_class cname =
          Option.value ~default:[] (Hashtbl.find_opt by_class cname)
        in
        List.iter
          (fun (ca, cb) ->
            List.iter
              (fun a -> List.iter (fun b -> link a b) (of_class cb))
              (of_class ca))
          class_pairs);
    let queue = Queue.create () in
    for c = 0 to n - 1 do
      if not safe.(c) then Queue.add c queue
    done;
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      List.iter
        (fun d ->
          if safe.(d) then begin
            safe.(d) <- false;
            Queue.add d queue
          end)
        adj.(c)
    done;
    safe

  (* Domain-parallel pricing across network profiles: each
     participating domain solves on its own session copy (own arena,
     scratch and pricing buffers; the abstract graph and any already-
     published cost tables are shared — both immutable). The pool's
     order-preserving map keeps results bit-identical to the
     sequential path. *)
  let solve_many ?algorithm ?profiler ?metrics ?pool t ~nets =
    match pool with
    | None -> List.map (fun net -> solve ?algorithm ?profiler ?metrics t ~net) nets
    | Some pool ->
        Array.to_list
          (Parallel.map_init pool
             ~init:(fun () -> copy t)
             ~f:(fun s net -> solve ?algorithm ?profiler ?metrics s ~net)
             (Array.of_list nets))
end

let choose ?algorithm ?profiler ?metrics ~classifier ~icc ~constraints ~net () =
  Session.solve ?algorithm ?profiler ?metrics
    (Session.create ?profiler ~classifier ~icc ~constraints ())
    ~net

let location_of d c =
  if c < 0 || c >= Array.length d.placement then Constraints.Client else d.placement.(c)

type violation =
  | Split_pair of string * string
  | Split_classifications of int * int
  | Pin_violated of string * Constraints.location

(* Independent re-check of a distribution against the constraint set:
   the cut construction above makes violations impossible for
   distributions it computes itself, but distributions can also arrive
   from a config record or a caller's hand-forced placement. *)
let validate ~classifier ~constraints d =
  let n = Classifier.classification_count classifier in
  let classifications_of cname =
    let acc = ref [] in
    for c = n - 1 downto 0 do
      if Classifier.class_of_classification classifier c = cname then acc := c :: !acc
    done;
    !acc
  in
  let pin_violations =
    List.concat_map
      (fun (cname, loc) ->
        if List.exists (fun c -> location_of d c <> loc) (classifications_of cname)
        then [ Pin_violated (cname, loc) ]
        else [])
      (Constraints.pinned_classes constraints)
    @ List.concat_map
        (fun (c, loc) ->
          if c >= 0 && c < n && location_of d c <> loc then
            [ Pin_violated (Printf.sprintf "classification %d" c, loc) ]
          else [])
        (Constraints.pinned_classifications constraints)
  in
  let split_classifications =
    List.filter_map
      (fun (a, b) ->
        if location_of d a <> location_of d b then Some (Split_classifications (a, b))
        else None)
      (Constraints.colocated_pairs constraints)
  in
  let split_pairs =
    List.filter_map
      (fun (ca, cb) ->
        let locs cname = List.map (location_of d) (classifications_of cname) in
        match (locs ca, locs cb) with
        | [], _ | _, [] -> None
        | la, lb ->
            if List.exists (fun x -> List.exists (fun y -> x <> y) lb) la then
              Some (Split_pair (ca, cb))
            else None)
      (Constraints.colocated_class_pairs constraints)
  in
  pin_violations @ split_classifications @ split_pairs

let pp_violation ppf = function
  | Split_pair (a, b) ->
      Format.fprintf ppf "co-location pair %s <-> %s is split across the cut" a b
  | Split_classifications (a, b) ->
      Format.fprintf ppf "co-located classifications %d and %d are split across the cut" a b
  | Pin_violated (what, loc) ->
      Format.fprintf ppf "%s is pinned to the %s but placed elsewhere" what
        (Constraints.location_name loc)

let server_classifications d =
  let acc = ref [] in
  for c = Array.length d.placement - 1 downto 0 do
    if d.placement.(c) = Constraints.Server then acc := c :: !acc
  done;
  !acc

let comm_time_under ~icc ~net ~placement =
  List.fold_left
    (fun acc (e : Icc.entry) ->
      if placement e.Icc.src <> placement e.Icc.dst then acc +. price_entry net e else acc)
    0. (Icc.entries icc)

let algorithm_tag = function
  | Mincut.Relabel_to_front -> "rtf"
  | Mincut.Edmonds_karp -> "ek"
  | Mincut.Dinic -> "dinic"

let algorithm_of_tag = function
  | "rtf" -> Mincut.Relabel_to_front
  | "ek" -> Mincut.Edmonds_karp
  | "dinic" -> Mincut.Dinic
  | s -> invalid_arg ("Analysis.decode: unknown algorithm " ^ s)

let encode d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d %f %s\n" d.node_count d.cut_ns d.predicted_comm_us
       (algorithm_tag d.algorithm));
  Array.iter
    (fun loc -> Buffer.add_char buf (match loc with Constraints.Client -> 'C' | Constraints.Server -> 'S'))
    d.placement;
  Buffer.contents buf

let decode s =
  match String.index_opt s '\n' with
  | None -> invalid_arg "Analysis.decode: truncated"
  | Some nl -> (
      let header = String.sub s 0 nl in
      let body = String.sub s (nl + 1) (String.length s - nl - 1) in
      match String.split_on_char ' ' header with
      | [ n; cut; comm; alg ] ->
          let node_count = int_of_string n in
          if String.length body <> node_count then
            invalid_arg "Analysis.decode: placement length mismatch";
          let placement =
            Array.init node_count (fun i ->
                match body.[i] with
                | 'C' -> Constraints.Client
                | 'S' -> Constraints.Server
                | c -> invalid_arg (Printf.sprintf "Analysis.decode: bad location %c" c))
          in
          let server_count =
            Array.fold_left
              (fun acc l -> if l = Constraints.Server then acc + 1 else acc)
              0 placement
          in
          {
            placement;
            cut_ns = int_of_string cut;
            predicted_comm_us = float_of_string comm;
            server_count;
            node_count;
            algorithm = algorithm_of_tag alg;
          }
      | _ -> invalid_arg "Analysis.decode: malformed header")
