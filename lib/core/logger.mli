(** Information loggers (paper §3.3).

    Coign components pass application events to the information logger,
    which is free to ignore them (the null logger of distributed
    execution), summarize them (the profiling logger), or keep full
    traces (the event logger, which drove a colleague's application
    simulations). Loggers are replaceable and composable. *)

type t = { logger_name : string; log : Event.t -> unit }

val null : t
(** Ignores everything. *)

val profiling : icc:Icc.t -> inst_comm:Inst_comm.t -> t
(** Summarizes [Interface_call] events into the classification-level
    ICC histograms and the instance-level matrix; other events are
    ignored (instantiation data lives in the classifier state). *)

val event_recorder : unit -> t * (unit -> Event.t list)
(** Full in-memory trace; the second component returns events in
    arrival order. *)

val counting : unit -> t * (unit -> int)
(** Counts events — the "slight additional overhead" message counter
    the paper proposes for recognizing usage drift (§6). *)

val tally : unit -> t * (unit -> (string * int) list)
(** Counts events per {!Event.kind_name}, sorted by name — cheap enough
    for the distributed RTE, where it tallies fault events
    ([call_retried], [instantiation_degraded]) without keeping a
    trace. *)

val tee : t list -> t
(** Fan an event out to several loggers. *)

val to_channel : out_channel -> t
(** Stream events one per line in the stable {!Event.to_line} format:
    tab-separated [kind<TAB>field=value...] with JSON-literal values.
    The format is a compatibility surface — external log scrapers may
    depend on it — and is pinned by a golden test. *)
