open Coign_flowgraph

type t = {
  machines : string array;
  assignment : int array;
  cost_ns : int;
  predicted_comm_us : float;
}

let ns_of_us us = int_of_float (Float.round (us *. 1000.))

let predicted_assignment_us graph pricing ~assignment =
  Icc_graph.predicted_us graph pricing ~separated:(fun p ->
      let a, b = Icc_graph.pair graph p in
      assignment a <> assignment b)

let choose ~classifier ~icc ~machines ~pins ~net () =
  let machines = Array.of_list machines in
  let k = Array.length machines in
  if k < 2 then invalid_arg "Multiway_analysis.choose: need at least two machines";
  let machine_index name =
    let rec find i =
      if i = k then invalid_arg ("Multiway_analysis.choose: unknown machine " ^ name)
      else if String.equal machines.(i) name then i
      else find (i + 1)
    in
    find 0
  in
  (* Stage 1: the shared abstract ICC graph. Its main node (= n) is
     machine terminal 0, matching the two-way engine's client node. *)
  let graph = Icc_graph.build ~classifier ~icc in
  let n = Icc_graph.classification_count graph in
  (* Nodes 0..n-1: classifications; n..n+k-1: machine terminals. *)
  let terminal m = n + m in
  let g = Flow_network.create ~n:(n + k) in
  (* Stage 2: price the abstract pairs against this network profile. *)
  let pricing = Icc_graph.price graph ~net in
  Icc_graph.iter_pairs graph (fun p ~a ~b ~non_remotable ->
      Flow_network.add_undirected g a b ~cap:(ns_of_us pricing.Icc_graph.pair_us.(p));
      if non_remotable then
        Flow_network.add_undirected g a b ~cap:Flow_network.infinity_cap);
  for c = 0 to n - 1 do
    match pins (Classifier.class_of_classification classifier c) with
    | Some name ->
        Flow_network.add_undirected g c (terminal (machine_index name))
          ~cap:Flow_network.infinity_cap
    | None -> ()
  done;
  let terminals = List.init k terminal in
  let partition = Multiway.multiway_cut g ~terminals in
  (* The partition assigns machine indices by terminal list order,
     which matches our machine order. Classifications disconnected
     from every terminal default to the main machine. *)
  let reachable = Array.make (n + k) false in
  let adjacency = Array.make (n + k) [] in
  List.iter
    (fun (a, b, _) ->
      adjacency.(a) <- b :: adjacency.(a);
      adjacency.(b) <- a :: adjacency.(b))
    (Flow_network.edges g);
  let queue = Queue.create () in
  List.iter
    (fun t ->
      reachable.(t) <- true;
      Queue.add t queue)
    terminals;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun u ->
        if not reachable.(u) then begin
          reachable.(u) <- true;
          Queue.add u queue
        end)
      adjacency.(v)
  done;
  let assignment =
    Array.init n (fun c -> if reachable.(c) then partition.Multiway.assignment.(c) else 0)
  in
  (* Abstract-graph nodes >= n (the main program) live on machine 0. *)
  let machine_of_node v = if v < 0 || v >= n then 0 else assignment.(v) in
  let predicted_comm_us = predicted_assignment_us graph pricing ~assignment:machine_of_node in
  { machines; assignment; cost_ns = partition.Multiway.cost; predicted_comm_us }

let machine_of t c =
  if c < 0 || c >= Array.length t.assignment then t.machines.(0)
  else t.machines.(t.assignment.(c))

let machine_histogram t =
  Array.to_list
    (Array.mapi
       (fun m name ->
         (name, Array.fold_left (fun acc a -> if a = m then acc + 1 else acc) 0 t.assignment))
       t.machines)
