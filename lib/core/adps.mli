(** The end-to-end Automatic Distributed Partitioning System pipeline
    (paper Figure 1):

    application binary → binary rewriter → instrumented binary →
    profiling scenarios → ICC data → profile analysis (+ network
    profile) → best distribution → binary rewriter → distributed
    application.

    Every stage communicates through the image's configuration record,
    so stages can run in separate processes (see [bin/coign.ml]) and
    profiles accumulate across scenario runs. *)

type scenario = Coign_com.Runtime.ctx -> unit
(** A usage scenario: drives the application through the object
    runtime (ordinarily via an automated testing tool). *)

(** {1 Stage 1: instrument} *)

val instrument :
  ?classifier:string -> ?stack_depth:int option ->
  Coign_image.Binary_image.t -> Coign_image.Binary_image.t
(** {!Coign_image.Rewriter.instrument} re-exported for pipeline
    symmetry. *)

(** {1 Stage 2: profile} *)

type profile_stats = {
  ps_instances : int;        (** component instances created *)
  ps_calls : int;            (** interface calls intercepted *)
  ps_bytes : int;            (** deep-copy bytes measured *)
  ps_compute_us : float;     (** compute charged by the application *)
  ps_classifications : int;  (** cumulative classifications known *)
}

val profile :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  image:Coign_image.Binary_image.t ->
  registry:Coign_com.Runtime.registry ->
  scenario ->
  Coign_image.Binary_image.t * profile_stats
(** Run one profiling scenario against an instrumented image. Loads any
    classifier state and ICC summaries already accumulated in the
    config record, runs the scenario under the profiling RTE, and
    writes the merged results back into the returned image. Raises
    [Invalid_argument] if the image is not in profiling mode.
    [loggers], [tracer], and [metrics] are forwarded to
    {!Rte.install_profiling}. *)

val profile_results :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  image:Coign_image.Binary_image.t ->
  registry:Coign_com.Runtime.registry ->
  scenario ->
  Coign_image.Binary_image.t * profile_stats * Rte.t
(** Like {!profile} but also exposes the RTE for callers that need raw
    run data (instance classifications, the instance communication
    matrix). The RTE is already uninstalled. *)

(** {1 Stage 3: analyze} *)

val static_constraints : Coign_image.Binary_image.t -> Constraints.t
(** Constraints the static interface-flow analysis derives from the
    image's metadata ({!Interface_flow.constraints_of}); empty when the
    image carries none. *)

val analysis_session :
  ?profiler:Coign_obs.Profiler.t ->
  ?extra_constraints:Constraints.t ->
  Coign_image.Binary_image.t ->
  Analysis.Session.t
(** Stage 1 of {!analyze}, reusable across networks: load the image's
    accumulated profile, combine every constraint source (API-pin
    static analysis, {!static_constraints}, [extra_constraints]), and
    build the network-independent analysis session. Raises
    [Invalid_argument] if the image holds no profile. With [profiler],
    profile loading and constraint assembly record under the
    ["profile_load"] phase, the graph build under ["icc_graph_build"]. *)

val analyze_with :
  ?algorithm:Coign_flowgraph.Mincut.algorithm ->
  ?profiler:Coign_obs.Profiler.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  session:Analysis.Session.t ->
  image:Coign_image.Binary_image.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  Coign_image.Binary_image.t * Analysis.distribution
(** Stage 2: solve an {!analysis_session} against one network profile,
    prove the result with {!Analysis.validate} (raising
    {!Lint.Rejected} on CG007 violations), and rewrite the image into
    distributed mode. [image] should be the image the session was built
    from. Adaptive callers keep one session and call this once per
    network condition. With [profiler], the solve and validation record
    under the ["pricing"], ["cut"], and ["validation"] phases. *)

val analyze :
  ?algorithm:Coign_flowgraph.Mincut.algorithm ->
  ?profiler:Coign_obs.Profiler.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  ?extra_constraints:Constraints.t ->
  image:Coign_image.Binary_image.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  Coign_image.Binary_image.t * Analysis.distribution
(** Combine the accumulated profile with constraints (API-pin static
    analysis of the image, {!static_constraints} from its interface
    metadata, and [extra_constraints]) and the network profile; choose
    the distribution; prove it with {!Analysis.validate}; rewrite the
    image into distributed mode carrying the classifier state and
    placement. Raises [Invalid_argument] if the image holds no profile,
    and {!Lint.Rejected} (CG007 errors) if the constraints are mutually
    unsatisfiable — e.g. hand-forced pins splitting a statically
    detected non-remotable pair. The rejection happens at analyze time,
    before the distribution can ever reach {!Coign_sim.Replay}'s
    runtime abort. *)

val load_profile : Coign_image.Binary_image.t -> (Classifier.t * Icc.t) option
(** The accumulated classifier state and ICC summary, if any. *)

val load_distribution : Coign_image.Binary_image.t -> (Classifier.t * Analysis.distribution) option

(** {1 Stage 4: distributed execution} *)

type exec_stats = {
  es_comm_us : float;        (** measured cross-machine communication *)
  es_compute_us : float;
  es_total_us : float;
  es_remote_calls : int;
  es_remote_bytes : int;
  es_intercepted : int;      (** all intercepted calls, local or remote *)
  es_instances : int;
  es_server_instances : int;
  es_forwarded_creates : int;
  es_retries : int;          (** remote-call attempts beyond the first *)
  es_drops : int;            (** messages the fault model ate *)
  es_spikes : int;           (** latency spikes suffered *)
  es_fallbacks : int;        (** instantiations degraded to the creator *)
  es_unreachable : int;      (** calls abandoned after retries *)
  es_fault_us : float;       (** comm time attributable to faults *)
  es_completed : bool;
      (** false when the scenario was cut short by [E_unreachable]; the
          stats cover everything that ran up to the abandoned call *)
  es_breaker_opens : int;    (** breaker trips (zero without resilience) *)
  es_breaker_closes : int;
  es_failovers : int;        (** switches down the fallback ladder *)
  es_failbacks : int;        (** switches back up to the primary *)
  es_migrations : int;       (** instances moved live between machines *)
  es_stranded_calls : int;   (** calls that waited on an open breaker *)
  es_rescued_calls : int;    (** failed calls completed locally *)
  es_final_rung : int;       (** rung installed when the run ended *)
  es_drift_checks : int;       (** drift checks run (zero without a watch) *)
  es_drift_detections : int;   (** checks that crossed the threshold *)
  es_repartitions : int;       (** placement switches the watch installed *)
  es_watch_migrations : int;   (** instances moved by those switches *)
  es_unchanged_cuts : int;     (** detections whose re-cut kept the placement *)
  es_rejected_cuts : int;      (** candidate cuts failing validation *)
  es_last_similarity : float;  (** similarity at the last check (1 without) *)
}

val execute :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  image:Coign_image.Binary_image.t ->
  registry:Coign_com.Runtime.registry ->
  network:Coign_netsim.Network.t ->
  ?jitter:float -> ?seed:int64 ->
  ?faults:Coign_netsim.Fault.spec -> ?retry:Coign_netsim.Fault.retry_policy ->
  ?resilience:Rte.resilience_config ->
  ?watch:Rte.watch_config ->
  scenario ->
  exec_stats
(** Run a scenario under the distribution stored in the image (which
    must be in distributed mode). [jitter] defaults to 0 (deterministic
    network); [faults] defaults to none and [retry] to
    {!Coign_netsim.Fault.default_retry}. [loggers], [tracer], and
    [metrics] are forwarded to {!Rte.install_distributed} and change
    nothing when absent. With [watch] (see {!watch}), the RTE monitors
    usage drift online and re-partitions when it fires. *)

val execute_with_policy :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  registry:Coign_com.Runtime.registry ->
  classifier:Classifier.t ->
  policy:Factory.policy ->
  network:Coign_netsim.Network.t ->
  ?jitter:float -> ?seed:int64 ->
  ?faults:Coign_netsim.Fault.spec -> ?retry:Coign_netsim.Fault.retry_policy ->
  ?resilience:Rte.resilience_config ->
  ?watch:Rte.watch_config ->
  scenario ->
  exec_stats
(** Run under an explicit placement policy — used to measure the
    application's default (developer-chosen) distribution. *)

val execute_fleet :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  image:Coign_image.Binary_image.t ->
  registry:Coign_com.Runtime.registry ->
  network:Coign_netsim.Network.t ->
  ?jitter:float -> ?seed:int64 ->
  ?faults:Coign_netsim.Fault.spec -> ?retry:Coign_netsim.Fault.retry_policy ->
  fleet:Rte.fleet_config ->
  scenario ->
  exec_stats * Rte.fleet_stats
(** {!execute} under a replicated server pool ({!Rte.fleet_config}),
    returning the pool counters alongside the shared stats. When the
    install-time identity gate rewrote a pool of one into the plain
    resilience path, the fleet counters are synthesized from the
    shared set (promotions, splits and resizes zero, one host, one
    shard) — the run itself is bit-identical to {!execute} with the
    equivalent [resilience]. *)

val watch :
  ?profiler:Coign_obs.Profiler.t ->
  ?extra_constraints:Constraints.t ->
  ?threshold:float ->
  ?check_every:int ->
  ?min_dwell_us:float ->
  ?min_window:float ->
  ?half_life_us:float ->
  ?sample_every:int ->
  ?tap:Coign_obs.Tap.sink ->
  image:Coign_image.Binary_image.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  Rte.watch_config
(** The watch configuration for a profiled image: an
    {!analysis_session} built from the image's accumulated profile and
    merged constraints, wrapped by {!Rte.watch}. Because the drift loop
    re-prices that same session, a re-cut is exactly what a fresh
    offline analyze of the shifted usage would choose. Raises
    [Invalid_argument] if the image holds no profile. *)

val fallback_ladder :
  ?algorithm:Coign_flowgraph.Mincut.algorithm ->
  ?profiler:Coign_obs.Profiler.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  ?pool:Coign_util.Parallel.t ->
  ?modes:(string * Coign_netsim.Net_profiler.t) list ->
  image:Coign_image.Binary_image.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  Fallback.t
(** The resilience ladder for a profiled image: rung 0 is the image's
    stored distribution when it carries one (so failback restores
    exactly the analyzed cut) and a fresh solve otherwise, later rungs
    re-price the same analysis session under the failure-mode profiles
    of [net] ({!Fallback.compute}). Raises [Invalid_argument] if the
    image holds no profile. *)

val pool_fallback_ladder :
  ?algorithm:Coign_flowgraph.Mincut.algorithm ->
  ?profiler:Coign_obs.Profiler.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  ?pool:Coign_util.Parallel.t ->
  ?modes:(string * Coign_netsim.Net_profiler.t) list ->
  ?replicas:int ->
  ?map:Pool.shard_map ->
  hosts:int ->
  image:Coign_image.Binary_image.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  Fallback.pool_ladder
(** The pool-elastic ladder for a profiled image: {!fallback_ladder}
    widened to [hosts] machines ({!Fallback.pool_ladder}), sharded and
    priced over the same analysis session. Raises [Invalid_argument]
    if the image holds no profile. *)
