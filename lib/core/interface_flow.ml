open Coign_idl
open Coign_image

module SS = Set.Make (String)

module SP = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let main_class = Coign_com.Runtime.main_class_name

type t = {
  meta : Image_meta.t;
  refs : SP.t;  (* (a, b): code in a can hold an interface handle on b *)
  non_remotable : SS.t;  (* interface names with a non-remotable method *)
}

let norm a b = if a <= b then (a, b) else (b, a)

let rec iface_names acc = function
  | Idl_type.Iface n -> SS.add n acc
  | Idl_type.Void | Idl_type.Int32 | Idl_type.Int64 | Idl_type.Double
  | Idl_type.Bool | Idl_type.Str | Idl_type.Blob | Idl_type.Opaque _ ->
      acc
  | Idl_type.Array u | Idl_type.Ptr u -> iface_names acc u
  | Idl_type.Struct fields ->
      List.fold_left (fun acc (_, u) -> iface_names acc u) acc fields

(* Interfaces a method can hand back to the caller (return value and
   [Out]/[In_out] parameters) and interfaces the caller can hand in
   ([In]/[In_out] parameters). *)
let method_yields (m : Idl_type.method_sig) =
  List.fold_left
    (fun acc (p : Idl_type.param) ->
      match p.Idl_type.pdir with
      | Idl_type.Out | Idl_type.In_out -> iface_names acc p.Idl_type.pty
      | Idl_type.In -> acc)
    (iface_names SS.empty m.Idl_type.ret)
    m.Idl_type.params

let method_accepts (m : Idl_type.method_sig) =
  List.fold_left
    (fun acc (p : Idl_type.param) ->
      match p.Idl_type.pdir with
      | Idl_type.In | Idl_type.In_out -> iface_names acc p.Idl_type.pty
      | Idl_type.Out -> acc)
    SS.empty m.Idl_type.params

let method_ifaces m = SS.elements (SS.union (method_yields m) (method_accepts m))

let iface_remotable (i : Image_meta.iface) =
  List.for_all Idl_type.method_remotable i.Image_meta.if_methods

let analyze (meta : Image_meta.t) =
  let impl =
    List.fold_left
      (fun m (c : Image_meta.cls) ->
        (c.Image_meta.cl_name, SS.of_list c.Image_meta.cl_provides) :: m)
      [] meta.Image_meta.classes
  in
  let impl_of name =
    Option.value ~default:SS.empty (List.assoc_opt name impl)
  in
  let yields_of, accepts_of =
    let tbl f =
      let h = Hashtbl.create 32 in
      List.iter
        (fun (i : Image_meta.iface) ->
          Hashtbl.replace h i.Image_meta.if_name
            (List.fold_left
               (fun acc m -> SS.union acc (f m))
               SS.empty i.Image_meta.if_methods))
        meta.Image_meta.ifaces;
      fun name -> Option.value ~default:SS.empty (Hashtbl.find_opt h name)
    in
    (tbl method_yields, tbl method_accepts)
  in
  (* Seed: instantiating a class grants a handle on it. The main
     program instantiates the image roots. *)
  let seed =
    List.fold_left
      (fun refs (c : Image_meta.cls) ->
        List.fold_left
          (fun refs child ->
            if child = c.Image_meta.cl_name then refs
            else SP.add (c.Image_meta.cl_name, child) refs)
          refs c.Image_meta.cl_creates)
      (List.fold_left
         (fun refs root -> SP.add (main_class, root) refs)
         SP.empty meta.Image_meta.roots)
      meta.Image_meta.classes
  in
  (* providers x j: instances x can supply a [j]-typed handle for —
     itself, or anything it already references that implements j. *)
  let providers refs x j =
    let own = if SS.mem j (impl_of x) then SS.singleton x else SS.empty in
    SP.fold
      (fun (a, b) acc -> if a = x && SS.mem j (impl_of b) then SS.add b acc else acc)
      refs own
  in
  (* Fixpoint. Holding any interface of b implies access to all of
     impl(b) — the runtime's query_interface honours every such request
     — so flow is computed per class pair, closed over QI:
       refs(a,b) ∧ j ∈ yields(impl b)  ⇒  refs(a, providers b j)
       refs(a,b) ∧ j ∈ accepts(impl b) ⇒  refs(b, providers a j)   *)
  let step refs =
    SP.fold
      (fun (a, b) acc ->
        SS.fold
          (fun i acc ->
            let acc =
              SS.fold
                (fun j acc ->
                  SS.fold
                    (fun c acc -> if c = a then acc else SP.add (a, c) acc)
                    (providers refs b j) acc)
                (yields_of i) acc
            in
            SS.fold
              (fun j acc ->
                SS.fold
                  (fun c acc -> if c = b then acc else SP.add (b, c) acc)
                  (providers refs a j) acc)
              (accepts_of i) acc)
          (impl_of b) acc)
      refs refs
  in
  let rec fix refs =
    let refs' = step refs in
    if SP.equal refs refs' then refs else fix refs'
  in
  let refs = fix seed in
  let non_remotable =
    List.fold_left
      (fun acc (i : Image_meta.iface) ->
        if iface_remotable i then acc else SS.add i.Image_meta.if_name acc)
      SS.empty meta.Image_meta.ifaces
  in
  { meta; refs; non_remotable }

let references t = SP.elements t.refs

let non_remotable_ifaces t = SS.elements t.non_remotable

let class_non_remotable t name =
  not (SS.is_empty (SS.inter (SS.of_list
    (match Image_meta.cls t.meta name with
     | Some c -> c.Image_meta.cl_provides
     | None -> []))
    t.non_remotable))

(* a and b must share a machine when either can call a non-remotable
   method of the other, i.e. either references the other and the
   referenced side exports a non-remotable interface. *)
let non_remotable_pairs t =
  SP.fold
    (fun (a, b) acc ->
      if a = main_class || b = main_class then acc
      else if class_non_remotable t b then SP.add (norm a b) acc
      else acc)
    t.refs SP.empty
  |> SP.elements

let client_pins t =
  SP.fold
    (fun (a, b) acc ->
      if a = main_class && class_non_remotable t b then SS.add b acc else acc)
    t.refs SS.empty
  |> SS.elements

let unreachable_classes t =
  let succs x =
    SP.fold (fun (a, b) acc -> if a = x then SS.add b acc else acc) t.refs SS.empty
  in
  let rec walk seen frontier =
    if SS.is_empty frontier then seen
    else
      let next =
        SS.fold (fun x acc -> SS.union acc (succs x)) frontier SS.empty
      in
      let fresh = SS.diff next seen in
      walk (SS.union seen fresh) fresh
  in
  let reached = walk (SS.singleton main_class) (SS.singleton main_class) in
  List.filter_map
    (fun (c : Image_meta.cls) ->
      if SS.mem c.Image_meta.cl_name reached then None else Some c.Image_meta.cl_name)
    t.meta.Image_meta.classes

let constraints_of t =
  let c =
    List.fold_left
      (fun c (a, b) -> Constraints.colocate_classes c a b)
      Constraints.empty (non_remotable_pairs t)
  in
  List.fold_left
    (fun c cname -> Constraints.pin_class c ~cname Constraints.Client)
    c (client_pins t)
