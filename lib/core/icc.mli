(** Inter-component communication (ICC) summaries.

    The profiling logger condenses every observed interface call into
    per-(source classification, target classification, interface)
    histograms over exponential message-size buckets (paper §3.3), so
    profile storage does not grow with execution time and stays
    network-independent. Request and reply are recorded as separate
    messages, preserving "number and size of messages". *)

type t

type entry = {
  src : int;            (** caller's classification; -1 = the main program *)
  dst : int;            (** callee's classification *)
  iface : string;
  remotable : bool;
  messages : Coign_util.Exp_bucket.t;
}

val create : unit -> t

val record :
  t -> src:int -> dst:int -> iface:string -> remotable:bool ->
  request:int -> reply:int -> unit
(** Record one call: two messages ([request] bytes toward [dst],
    [reply] bytes back). A call on a non-remotable interface marks the
    whole (src,dst,iface) entry non-remotable forever. *)

val entries : t -> entry list
(** Deterministic order (sorted by key). *)

val pair_entries : t -> ((int * int) * entry list) list
(** Entries grouped by unordered classification pair; the pair key is
    [(min, max)]. *)

val fold_messages :
  (src:int -> dst:int -> count:int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold the message count of every (src, dst, iface) cell without
    materializing the sorted {!entries} list. One call per cell,
    unspecified order — for callers (usage signatures, summaries) that
    aggregate into their own order-insensitive structures. *)

val call_count : t -> int
(** Total calls recorded (= messages / 2). *)

val total_bytes : t -> int

val merge : t -> t -> t
(** Combine profiles from multiple scenarios (paper: "log files from
    multiple profiling scenarios may be combined"). *)

val map_classifications : (int -> int) -> t -> t
(** Rewrite classification ids (e.g. with the remap from
    {!Classifier.merge}); the main program's [-1] is preserved. Entries
    that collide after mapping merge. *)

val encode : t -> string
val decode : string -> t
(** [decode (encode t)] preserves per-bucket message counts and byte
    totals (individual sizes within a bucket are summarized — that is
    the point of the buckets), so [encode] is a fixpoint after one
    round trip. *)

val is_empty : t -> bool
