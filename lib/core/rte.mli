(** The Coign Runtime Executive (paper §3.1).

    Loaded (conceptually) from the first slot of the rewritten
    application's import table, the RTE provides the low-level services
    the other Coign components build on:

    - {b interception of component instantiation requests} — installed
      as the object runtime's create hook, the analog of inline
      redirection of [CoCreateInstance];
    - {b interface wrapping} — every interface pointer that escapes to
      the application is replaced by a Coign-instrumented handle whose
      dispatch forwards through the original, so every inter-component
      call is trapped;
    - {b shadow stack management} — thread-local contextual information
      across interface calls, read by the instance classifiers;
    - {b configuration access} — construction from an instrumented
      image's config record lives in {!Adps}.

    Two personalities, as in the paper: the profiling RTE (heavyweight
    informer + profiling logger) and the distributed RTE (lightweight
    informer + component factory + null logger). *)

type t

(** {1 Installation} *)

val install_profiling :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  classifier:Classifier.t ->
  Coign_com.Runtime.ctx ->
  t
(** Instrument a context for scenario-based profiling. A profiling
    logger feeding {!icc} and {!inst_comm} is always installed;
    [loggers] are additional sinks (e.g. an event recorder).

    [tracer] records a span per intercepted call (category ["call"],
    named [Iface.method]) and per instantiation (category ["create"],
    named by class), timed on {!sim_now} and nested per the shadow
    stack. [metrics] registers the [coign_rte_*] instruments. Both
    default to off, and when off the RTE runs exactly the instructions
    it always did — profiles, stats, and events are bit-identical. *)

type resilience_config = {
  rc_ladder : Fallback.t;
      (** ranked fallback distributions; rung 0 should match the
          installed factory policy so failback restores it *)
  rc_health : Coign_netsim.Health.policy;  (** breaker configuration *)
  rc_max_probe_rounds : int;
      (** failed attempt/probe rounds a single call endures (waiting
          out cooloffs in between) before raising [E_unreachable] *)
}

val resilience :
  ?health:Coign_netsim.Health.policy ->
  ?max_probe_rounds:int ->
  Fallback.t ->
  resilience_config
(** Convenience constructor: {!Coign_netsim.Health.default_policy} and
    8 probe rounds unless overridden. *)

type fleet_config = {
  fc_ladder : Fallback.pool_ladder;
      (** pool-elastic ladder; rung 0 is the widest pool, the tail is
          the base two-host ladder at pool size 1 *)
  fc_health : Coign_netsim.Health.policy;
      (** breaker configuration, applied per replica link (one breaker
          per pool host) *)
  fc_max_probe_rounds : int;
      (** failed attempt/probe rounds a single call endures before
          raising [E_unreachable] *)
  fc_split_share : float;
      (** a shard carrying more than this share of the decayed window
          load is hot and gets split, in (0, 1] *)
  fc_check_every : int;  (** observations between hot-shard checks *)
  fc_half_life_us : float;  (** shard-load window decay half-life *)
  fc_host_faults : (int * Coign_netsim.Fault.spec) list;
      (** per-host fault overlays (host index -> spec), replacing
          [dc_faults] on that host's link; hosts not listed keep the
          global model. Seeded {!Coign_util.Prng.stream} [8 + host] of
          [dc_seed], so a pool run never perturbs the global streams *)
}

val fleet :
  ?health:Coign_netsim.Health.policy ->
  ?max_probe_rounds:int ->
  ?split_share:float ->
  ?check_every:int ->
  ?half_life_us:float ->
  ?host_faults:(int * Coign_netsim.Fault.spec) list ->
  Fallback.pool_ladder ->
  fleet_config
(** Convenience constructor: {!Coign_netsim.Health.default_policy},
    8 probe rounds, 0.6 split share, a check every 64 observations,
    200 ms half-life, no per-host overlays. Raises on a split share
    outside (0, 1] or a non-positive check cadence. *)

type watch_config = {
  wc_session : Analysis.Session.t;
      (** the analysis session the re-cut re-prices — its classifier
          must be the one the RTE runs under *)
  wc_net : Coign_netsim.Net_profiler.t;
      (** network profile candidate cuts are priced against *)
  wc_threshold : float;  (** drift fires below this similarity *)
  wc_check_every : int;  (** observations between drift checks *)
  wc_min_dwell_us : float;
      (** minimum virtual time between placement decisions — the
          staleness bound, and half the anti-flap hysteresis *)
  wc_min_window : float;
      (** minimum decayed window mass before drift is trusted *)
  wc_half_life_us : float;  (** window decay half-life *)
  wc_sample_every : int;    (** tap thinning: expect 1-in-k offered *)
  wc_tap : Coign_obs.Tap.sink option;
      (** where sampled observations stream; [None] detaches the tap
          entirely *)
}

val watch :
  ?threshold:float ->
  ?check_every:int ->
  ?min_dwell_us:float ->
  ?min_window:float ->
  ?half_life_us:float ->
  ?sample_every:int ->
  ?tap:Coign_obs.Tap.sink ->
  net:Coign_netsim.Net_profiler.t ->
  Analysis.Session.t ->
  watch_config
(** Convenience constructor: threshold 0.90, a check every 256
    observations, 50 ms dwell, window mass 32, 200 ms half-life,
    1-in-16 tap sampling. Raises on a threshold outside [0, 1] or a
    non-positive check cadence. *)

(** One drift-check outcome in the watch timeline. *)
type watch_action =
  | W_steady        (** no drift (or gated by dwell/mass) *)
  | W_unchanged     (** drifted, but the re-cut chose the installed placement *)
  | W_repartitioned of { wa_migrated : int; wa_left : int; wa_servers : int }
  | W_rejected of int  (** candidate cut failed constraint validation *)

type watch_checkpoint = {
  wk_at_us : float;        (** virtual time of the check *)
  wk_similarity : float;
  wk_window_pairs : int;
  wk_action : watch_action;
}

type distributed_config = {
  dc_factory_policy : Factory.policy;
  dc_network : Coign_netsim.Network.t;   (** ground-truth network *)
  dc_jitter : float;    (** relative stddev of per-message time noise;
                            0 for deterministic runs *)
  dc_seed : int64;      (** master seed; one {!Coign_util.Prng.stream}
                            per stochastic concern (jitter, backoff,
                            fault verdicts), so enabling faults never
                            perturbs the jitter draws *)
  dc_faults : Coign_netsim.Fault.spec option;
                        (** fault model over [dc_network]; [None] (or
                            [Some Fault.zero]) runs fault-free *)
  dc_retry : Coign_netsim.Fault.retry_policy;
                        (** how cross-machine messaging survives drops *)
  dc_resilience : resilience_config option;
                        (** adaptive failover across the fallback
                            ladder; [None] (the default everywhere)
                            runs the PR 3 retry-only path, bit for
                            bit *)
  dc_watch : watch_config option;
                        (** online drift watch and bounded-staleness
                            re-partitioning; [None] (the default
                            everywhere) runs the static placement, bit
                            for bit. Mutually exclusive with
                            [dc_resilience] — both drive the factory
                            policy — and requires a
                            [Factory.By_classification] policy as the
                            initial placement *)
  dc_fleet : fleet_config option;
                        (** replicated server pool with per-replica
                            breakers, hot-shard splitting and
                            pool-elastic failover; [None] (the default
                            everywhere) runs the single-server paths
                            above, bit for bit. Mutually exclusive
                            with [dc_resilience] and [dc_watch]. A
                            pool of one with no host overlays is
                            rewritten at install time into the exact
                            [dc_resilience] configuration over the
                            ladder's base — the fleet layer is then
                            literally absent *)
}

val install_distributed :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  classifier:Classifier.t ->
  config:distributed_config ->
  Coign_com.Runtime.ctx ->
  t
(** Realize a distribution: instantiation requests are relocated by the
    component factory, and every cross-machine call is charged its
    DCOM round-trip on the configured network. A cross-machine call
    over a non-remotable interface raises
    [Com_error (E_cannot_marshal _)] — the partitioner's infinite
    edges exist precisely to make this unreachable.

    Under a fault model, every cross-machine message asks the model for
    a verdict; drops cost a timeout and are retried with exponential
    backoff per [dc_retry]. A call whose retries are exhausted raises
    [Com_error (E_unreachable _)] after counting itself; an
    instantiation request whose retries are exhausted degrades
    gracefully — the instance is placed with its creator and the
    fallback counted (see {!stats}).

    With [dc_resilience], every forwarded call and create is routed
    through a link circuit breaker ({!Coign_netsim.Health}). Failures
    feed the breaker; when it opens, the RTE atomically switches the
    factory to the next rung of the fallback ladder, migrates the
    instances the static remotability facts mark safe, and lets the
    failed call complete locally if the failover co-located its
    endpoints (the underlying call already ran — the fault model only
    judges the communication). Calls that must still cross the dead
    link are stranded: they wait out the cooloff on the virtual clock
    and become the half-open probe; probe success closes the breaker
    and fails back to rung 0, probe failure reopens it with an
    escalated cooloff. Breaker transitions and rung switches are
    logged ({!Event.Breaker_opened} etc.), traced (category
    ["resilience"]) and counted ([coign_resilience_*] metrics and
    {!stats}). With [dc_resilience = None] the run is bit-identical to
    one without the resilience layer compiled in.

    With [dc_watch], every intercepted call and create also feeds an
    exponentially-decayed observation window ({!Window}) and, when a
    tap sink is attached, a seeded 1-in-k sample stream
    ({!Coign_obs.Tap} on {!Coign_util.Prng.stream} 3 of [dc_seed] —
    attaching or detaching the tap never perturbs jitter, backoff or
    fault draws). Every [wc_check_every] observations the RTE compares
    the window signature against the adopted baseline
    ({!Drift.similarity}); below [wc_threshold] it logs
    {!Event.Drift_detected}, re-prices the analysis session with the
    window's per-pair volumes ([Session.solve ~scale]), lint-validates
    the candidate cut, and — when the placement actually changes —
    atomically switches the factory and migrates the statically-safe
    instances, logging {!Event.Repartitioned} and per-instance
    {!Event.Instance_migrated}. The window snapshot then becomes the
    new baseline and a [wc_min_dwell_us] dwell starts, so the loop
    cannot flap on the shift it just absorbed. Checks run on the
    virtual clock before the observed call is routed, so a re-cut
    applies to the very call that triggered it. With [dc_watch = None]
    the run is bit-identical to one without the watch compiled in.

    With [dc_fleet], the logical server side runs as a pool: each
    component shard lives on the host its rung's {!Pool.shape}
    assigns, every host link carries its own circuit breaker, and
    reads of a replicated shard survive a host loss by promotion — the
    first healthy replica in ring order takes over the shard
    ({!Event.Replica_promoted}) without touching the rest of the pool.
    A breaker opening on a host whose shards cannot all be promoted
    shrinks the pool one rung ({!Event.Pool_resized}), migrating only
    the statically-safe instances, exactly as resilience failover
    does; probe success on the degraded host fails back to the widest
    rung. Per-link observation volume feeds a decayed window; a shard
    exceeding [fc_split_share] of the load is split, its migration-safe
    upper components moving to a fresh shard on the least-loaded host
    ({!Event.Shard_split}). All decisions run on the virtual clock off
    seeded streams, so runs are deterministic and independent of
    domain-parallel execution. *)

val uninstall : t -> unit
(** Remove all hooks; the context reverts to plain local execution. *)

(** {1 Profiling results} *)

val icc : t -> Icc.t
val inst_comm : t -> Inst_comm.t
val classifier : t -> Classifier.t

val classification_of : t -> int -> int
(** Classification assigned to an instance at its creation; -1 for the
    main program or instances created before installation. *)

val instance_classifications : t -> (int * int) list
(** [(instance, classification)] pairs, ascending by instance. *)

val instances_created : t -> int list
(** Instances whose creation this RTE intercepted, ascending. *)

(** {1 Distributed-execution results} *)

val factory : t -> Factory.t option
val comm_us : t -> float
(** Accumulated cross-machine communication time (µs). *)

val sim_now : t -> float
(** The deterministic virtual clock spans are timed on: {!comm_us} plus
    the compute time the application has charged. Never wall time. *)

val remote_calls : t -> int
val remote_bytes : t -> int
val intercepted_calls : t -> int
(** All calls that crossed a Coign wrapper, local or remote. *)

type stats = {
  st_comm_us : float;
  st_remote_calls : int;   (** completed remote calls and forwards *)
  st_remote_bytes : int;
  st_intercepted : int;
  st_retries : int;        (** attempts beyond the first, summed *)
  st_drops : int;          (** messages the fault model ate *)
  st_spikes : int;         (** latency spikes suffered *)
  st_fallbacks : int;      (** instantiations degraded to the creator *)
  st_unreachable : int;    (** calls abandoned with [E_unreachable] *)
  st_fault_us : float;     (** comm time attributable to faults *)
  st_breaker_opens : int;  (** breaker trips (zero without resilience) *)
  st_breaker_closes : int;
  st_failovers : int;      (** switches down the fallback ladder *)
  st_failbacks : int;      (** switches back up to the primary *)
  st_migrations : int;     (** instances moved live between machines *)
  st_stranded_calls : int; (** calls that waited on an open breaker *)
  st_rescued_calls : int;  (** failed calls completed locally after
                               failover *)
  st_final_rung : int;     (** rung installed when the run ended *)
  st_drift_checks : int;       (** drift checks run (zero without a watch) *)
  st_drift_detections : int;   (** checks that crossed the threshold *)
  st_repartitions : int;       (** placement switches the watch installed *)
  st_watch_migrations : int;   (** instances moved by those switches *)
  st_unchanged_cuts : int;     (** detections whose re-cut kept the placement *)
  st_rejected_cuts : int;      (** candidate cuts failing validation *)
  st_last_similarity : float;  (** similarity at the last check (1 without) *)
}

val stats : t -> stats
(** One-shot snapshot of the run's communication and fault counters. *)

val link_health : t -> Coign_netsim.Health.t option
(** The breaker state, when a resilience policy is installed. *)

val current_rung : t -> int
(** Fallback rung currently installed (0 without resilience). *)

val watch_timeline : t -> watch_checkpoint list
(** Every drift check the watch ran, in virtual-time order (empty
    without a watch). *)

val watch_placement : t -> Analysis.distribution option
(** The distribution the watch currently has installed — the initial
    policy's until the first repartition. *)

val watch_window_signature : t -> Drift.signature option
(** The observation window's decayed signature as of {!sim_now}. *)

val watch_tap_counts : t -> (int * int) option
(** [(offered, sampled)] tap counts, when a watch with an attached tap
    is installed. *)

type fleet_stats = {
  fs_breaker_opens : int;   (** per-host breaker trips, summed *)
  fs_breaker_closes : int;
  fs_failovers : int;       (** switches down the pool ladder *)
  fs_failbacks : int;       (** switches back up to the widest rung *)
  fs_migrations : int;      (** instances moved live between hosts *)
  fs_stranded_calls : int;  (** calls that waited on an open breaker *)
  fs_rescued_calls : int;   (** failed calls completed locally after a
                                pool change co-located their endpoints *)
  fs_promotions : int;      (** replica promotions (shard kept serving
                                through a host loss) *)
  fs_splits : int;          (** hot shards split *)
  fs_resizes : int;         (** pool size changes (up or down) *)
  fs_inter_host_calls : int;  (** server-to-server calls that crossed
                                  pool hosts *)
  fs_final_rung : int;
  fs_final_hosts : int;
  fs_final_shards : int;
}

val fleet_stats : t -> fleet_stats option
(** Pool counters, when a fleet is installed. [None] when the
    install-time identity gate rewrote a pool of one into the plain
    resilience path — the shared counters then live in {!stats}. *)

val fleet_shard_table : t -> (int array * int array) option
(** [(shard_of, active_host_of_shard)]: classification -> shard id
    (-1 = client side) and shard -> currently serving host, as of now.
    Copies; mutation-safe. *)

val machine_of_instance : t -> int -> Constraints.location

val call_counts : t -> ((int * int) * int) list
(** Lightweight per-(caller classification, callee classification) call
    counts, maintained in both modes — the "slight additional overhead"
    message counting of paper §6 that lets the runtime recognize when
    usage differs from the profiled scenarios (see {!Drift}). Sorted by
    pair. *)
