(** The Coign Runtime Executive (paper §3.1).

    Loaded (conceptually) from the first slot of the rewritten
    application's import table, the RTE provides the low-level services
    the other Coign components build on:

    - {b interception of component instantiation requests} — installed
      as the object runtime's create hook, the analog of inline
      redirection of [CoCreateInstance];
    - {b interface wrapping} — every interface pointer that escapes to
      the application is replaced by a Coign-instrumented handle whose
      dispatch forwards through the original, so every inter-component
      call is trapped;
    - {b shadow stack management} — thread-local contextual information
      across interface calls, read by the instance classifiers;
    - {b configuration access} — construction from an instrumented
      image's config record lives in {!Adps}.

    Two personalities, as in the paper: the profiling RTE (heavyweight
    informer + profiling logger) and the distributed RTE (lightweight
    informer + component factory + null logger). *)

type t

(** {1 Installation} *)

val install_profiling :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  classifier:Classifier.t ->
  Coign_com.Runtime.ctx ->
  t
(** Instrument a context for scenario-based profiling. A profiling
    logger feeding {!icc} and {!inst_comm} is always installed;
    [loggers] are additional sinks (e.g. an event recorder).

    [tracer] records a span per intercepted call (category ["call"],
    named [Iface.method]) and per instantiation (category ["create"],
    named by class), timed on {!sim_now} and nested per the shadow
    stack. [metrics] registers the [coign_rte_*] instruments. Both
    default to off, and when off the RTE runs exactly the instructions
    it always did — profiles, stats, and events are bit-identical. *)

type distributed_config = {
  dc_factory_policy : Factory.policy;
  dc_network : Coign_netsim.Network.t;   (** ground-truth network *)
  dc_jitter : float;    (** relative stddev of per-message time noise;
                            0 for deterministic runs *)
  dc_seed : int64;      (** master seed; one {!Coign_util.Prng.stream}
                            per stochastic concern (jitter, backoff,
                            fault verdicts), so enabling faults never
                            perturbs the jitter draws *)
  dc_faults : Coign_netsim.Fault.spec option;
                        (** fault model over [dc_network]; [None] (or
                            [Some Fault.zero]) runs fault-free *)
  dc_retry : Coign_netsim.Fault.retry_policy;
                        (** how cross-machine messaging survives drops *)
}

val install_distributed :
  ?loggers:Logger.t list ->
  ?tracer:Coign_obs.Trace.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  classifier:Classifier.t ->
  config:distributed_config ->
  Coign_com.Runtime.ctx ->
  t
(** Realize a distribution: instantiation requests are relocated by the
    component factory, and every cross-machine call is charged its
    DCOM round-trip on the configured network. A cross-machine call
    over a non-remotable interface raises
    [Com_error (E_cannot_marshal _)] — the partitioner's infinite
    edges exist precisely to make this unreachable.

    Under a fault model, every cross-machine message asks the model for
    a verdict; drops cost a timeout and are retried with exponential
    backoff per [dc_retry]. A call whose retries are exhausted raises
    [Com_error (E_unreachable _)] after counting itself; an
    instantiation request whose retries are exhausted degrades
    gracefully — the instance is placed with its creator and the
    fallback counted (see {!stats}). *)

val uninstall : t -> unit
(** Remove all hooks; the context reverts to plain local execution. *)

(** {1 Profiling results} *)

val icc : t -> Icc.t
val inst_comm : t -> Inst_comm.t
val classifier : t -> Classifier.t

val classification_of : t -> int -> int
(** Classification assigned to an instance at its creation; -1 for the
    main program or instances created before installation. *)

val instance_classifications : t -> (int * int) list
(** [(instance, classification)] pairs, ascending by instance. *)

val instances_created : t -> int list
(** Instances whose creation this RTE intercepted, ascending. *)

(** {1 Distributed-execution results} *)

val factory : t -> Factory.t option
val comm_us : t -> float
(** Accumulated cross-machine communication time (µs). *)

val sim_now : t -> float
(** The deterministic virtual clock spans are timed on: {!comm_us} plus
    the compute time the application has charged. Never wall time. *)

val remote_calls : t -> int
val remote_bytes : t -> int
val intercepted_calls : t -> int
(** All calls that crossed a Coign wrapper, local or remote. *)

type stats = {
  st_comm_us : float;
  st_remote_calls : int;   (** completed remote calls and forwards *)
  st_remote_bytes : int;
  st_intercepted : int;
  st_retries : int;        (** attempts beyond the first, summed *)
  st_drops : int;          (** messages the fault model ate *)
  st_spikes : int;         (** latency spikes suffered *)
  st_fallbacks : int;      (** instantiations degraded to the creator *)
  st_unreachable : int;    (** calls abandoned with [E_unreachable] *)
  st_fault_us : float;     (** comm time attributable to faults *)
}

val stats : t -> stats
(** One-shot snapshot of the run's communication and fault counters. *)

val machine_of_instance : t -> int -> Constraints.location

val call_counts : t -> ((int * int) * int) list
(** Lightweight per-(caller classification, callee classification) call
    counts, maintained in both modes — the "slight additional overhead"
    message counting of paper §6 that lets the runtime recognize when
    usage differs from the profiled scenarios (see {!Drift}). Sorted by
    pair. *)
