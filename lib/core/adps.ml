open Coign_com
open Coign_image

type scenario = Runtime.ctx -> unit

let key_classifier = Config_keys.classifier
let key_icc = Config_keys.icc
let key_distribution = Config_keys.distribution

let instrument = Rewriter.instrument

type profile_stats = {
  ps_instances : int;
  ps_calls : int;
  ps_bytes : int;
  ps_compute_us : float;
  ps_classifications : int;
}

let config_of image =
  match image.Binary_image.config with
  | Some c -> c
  | None -> invalid_arg "Adps: image has no configuration record (not instrumented)"

let classifier_of_config config =
  match Config_record.entry config key_classifier with
  | Some state -> Classifier.decode state
  | None ->
      let kind =
        match Classifier.kind_of_name (Config_record.classifier_name config) with
        | Some k -> k
        | None ->
            invalid_arg
              ("Adps: unknown classifier " ^ Config_record.classifier_name config)
      in
      Classifier.create ?stack_depth:(Config_record.stack_depth config) kind

let profile_results ?loggers ?tracer ?metrics ~image ~registry scenario =
  let config = config_of image in
  if Config_record.mode config <> Config_record.Profiling then
    invalid_arg "Adps.profile: image is not in profiling mode";
  let classifier = classifier_of_config config in
  let ctx = Runtime.create_ctx registry in
  let rte = Rte.install_profiling ?loggers ?tracer ?metrics ~classifier ctx in
  scenario ctx;
  Rte.uninstall rte;
  let icc =
    match Config_record.entry config key_icc with
    | Some prior -> Icc.merge (Icc.decode prior) (Rte.icc rte)
    | None -> Rte.icc rte
  in
  let config =
    Config_record.set_entry
      (Config_record.set_entry config key_classifier (Classifier.encode classifier))
      key_icc (Icc.encode icc)
  in
  let stats =
    {
      ps_instances = List.length (Rte.instances_created rte);
      ps_calls = Rte.intercepted_calls rte;
      ps_bytes = Inst_comm.total_bytes (Rte.inst_comm rte) ;
      ps_compute_us = Runtime.compute_us ctx;
      ps_classifications = Classifier.classification_count classifier;
    }
  in
  ({ image with Binary_image.config = Some config }, stats, rte)

let profile ?loggers ?tracer ?metrics ~image ~registry scenario =
  let image, stats, _rte = profile_results ?loggers ?tracer ?metrics ~image ~registry scenario in
  (image, stats)

let load_profile image =
  match image.Binary_image.config with
  | None -> None
  | Some config -> (
      match (Config_record.entry config key_classifier, Config_record.entry config key_icc) with
      | Some cls, Some icc -> Some (Classifier.decode cls, Icc.decode icc)
      | _ -> None)

let load_distribution image =
  match image.Binary_image.config with
  | None -> None
  | Some config -> (
      match
        (Config_record.entry config key_classifier, Config_record.entry config key_distribution)
      with
      | Some cls, Some dist -> Some (Classifier.decode cls, Analysis.decode dist)
      | _ -> None)

let static_constraints image =
  match image.Binary_image.meta with
  | None -> Constraints.empty
  | Some meta -> Interface_flow.constraints_of (Interface_flow.analyze meta)

let timed profiler name f =
  match profiler with None -> f () | Some p -> Coign_obs.Profiler.time p name f

let analysis_session ?profiler ?(extra_constraints = Constraints.empty) image =
  let loaded =
    timed profiler "profile_load" (fun () ->
        match load_profile image with
        | None -> None
        | Some (classifier, icc) ->
            let constraints =
              Constraints.merge
                (Constraints.merge (Constraints.of_image image) (static_constraints image))
                extra_constraints
            in
            Some (classifier, icc, constraints))
  in
  match loaded with
  | None -> invalid_arg "Adps.analyze: image holds no profile"
  | Some (classifier, icc, constraints) ->
      Analysis.Session.create ?profiler ~classifier ~icc ~constraints ()

let analyze_with ?algorithm ?profiler ?metrics ~session ~image ~net () =
  let classifier = Analysis.Session.classifier session in
  let constraints = Analysis.Session.constraints session in
  let distribution = Analysis.Session.solve ?algorithm ?profiler ?metrics session ~net in
  (* The cut construction cannot violate the constraints it was
     given, but hand-forced extra constraints can be mutually
     unsatisfiable (e.g. pins splitting a static co-location pair).
     Prove the result before writing it into the image — the
     analyze-time replacement for Replay's runtime abort. *)
  timed profiler "validation" (fun () ->
      match Analysis.validate ~classifier ~constraints distribution with
      | [] -> ()
      | violations ->
          raise
            (Lint.Rejected
               (Lint.order
                  (List.map
                     (fun v ->
                       Lint.diag "CG007" Lint.Error image.Binary_image.img_name
                         (Format.asprintf "%a" Analysis.pp_violation v))
                     violations))));
  let image =
    Rewriter.write_distribution image
      ~entries:
        [
          (key_classifier, Classifier.encode classifier);
          (key_distribution, Analysis.encode distribution);
        ]
  in
  (image, distribution)

let analyze ?algorithm ?profiler ?metrics ?extra_constraints ~image ~net () =
  let session = analysis_session ?profiler ?extra_constraints image in
  analyze_with ?algorithm ?profiler ?metrics ~session ~image ~net ()

type exec_stats = {
  es_comm_us : float;
  es_compute_us : float;
  es_total_us : float;
  es_remote_calls : int;
  es_remote_bytes : int;
  es_intercepted : int;
  es_instances : int;
  es_server_instances : int;
  es_forwarded_creates : int;
  es_retries : int;
  es_drops : int;
  es_spikes : int;
  es_fallbacks : int;
  es_unreachable : int;
  es_fault_us : float;
  es_completed : bool;
  (* Resilience counters — zero unless a resilience policy ran. *)
  es_breaker_opens : int;
  es_breaker_closes : int;
  es_failovers : int;
  es_failbacks : int;
  es_migrations : int;
  es_stranded_calls : int;
  es_rescued_calls : int;
  es_final_rung : int;
  (* Watch counters — zero (similarity 1) unless a watch ran. *)
  es_drift_checks : int;
  es_drift_detections : int;
  es_repartitions : int;
  es_watch_migrations : int;
  es_unchanged_cuts : int;
  es_rejected_cuts : int;
  es_last_similarity : float;
}

let execute_with_policy_full ?loggers ?tracer ?metrics ~registry ~classifier ~policy ~network
    ?(jitter = 0.) ?(seed = 0x5EEDL) ?faults ?(retry = Coign_netsim.Fault.default_retry)
    ?resilience ?watch ?fleet scenario =
  let ctx = Runtime.create_ctx registry in
  let rte =
    Rte.install_distributed ?loggers ?tracer ?metrics ~classifier
      ~config:
        {
          Rte.dc_factory_policy = policy;
          dc_network = network;
          dc_jitter = jitter;
          dc_seed = seed;
          dc_faults = faults;
          dc_retry = retry;
          dc_resilience = resilience;
          dc_watch = watch;
          dc_fleet = fleet;
        }
      ctx
  in
  (* The RTE's typed unreachability error is the scenario's fault
     horizon: everything up to the abandoned call still counts, so
     report what ran instead of propagating (es_completed says which). *)
  let completed =
    match scenario ctx with
    | () -> true
    | exception Hresult.Com_error (Hresult.E_unreachable _) -> false
  in
  Rte.uninstall rte;
  let factory = Option.get (Rte.factory rte) in
  let st = Rte.stats rte in
  let comm = st.Rte.st_comm_us in
  let compute = Runtime.compute_us ctx in
  let stats =
  {
    es_comm_us = comm;
    es_compute_us = compute;
    es_total_us = comm +. compute;
    es_remote_calls = st.Rte.st_remote_calls;
    es_remote_bytes = st.Rte.st_remote_bytes;
    es_intercepted = st.Rte.st_intercepted;
    es_instances = List.length (Rte.instances_created rte);
    es_server_instances =
      List.length
        (List.filter
           (fun i -> i <> Runtime.main_instance)
           (Factory.instances_on factory Constraints.Server));
    es_forwarded_creates = Factory.forwarded_requests factory;
    es_retries = st.Rte.st_retries;
    es_drops = st.Rte.st_drops;
    es_spikes = st.Rte.st_spikes;
    es_fallbacks = st.Rte.st_fallbacks;
    es_unreachable = st.Rte.st_unreachable;
    es_fault_us = st.Rte.st_fault_us;
    es_completed = completed;
    es_breaker_opens = st.Rte.st_breaker_opens;
    es_breaker_closes = st.Rte.st_breaker_closes;
    es_failovers = st.Rte.st_failovers;
    es_failbacks = st.Rte.st_failbacks;
    es_migrations = st.Rte.st_migrations;
    es_stranded_calls = st.Rte.st_stranded_calls;
    es_rescued_calls = st.Rte.st_rescued_calls;
    es_final_rung = st.Rte.st_final_rung;
    es_drift_checks = st.Rte.st_drift_checks;
    es_drift_detections = st.Rte.st_drift_detections;
    es_repartitions = st.Rte.st_repartitions;
    es_watch_migrations = st.Rte.st_watch_migrations;
    es_unchanged_cuts = st.Rte.st_unchanged_cuts;
    es_rejected_cuts = st.Rte.st_rejected_cuts;
    es_last_similarity = st.Rte.st_last_similarity;
  }
  in
  (stats, Rte.fleet_stats rte)

let execute_with_policy ?loggers ?tracer ?metrics ~registry ~classifier ~policy ~network
    ?jitter ?seed ?faults ?retry ?resilience ?watch scenario =
  fst
    (execute_with_policy_full ?loggers ?tracer ?metrics ~registry ~classifier ~policy ~network
       ?jitter ?seed ?faults ?retry ?resilience ?watch scenario)

let execute ?loggers ?tracer ?metrics ~image ~registry ~network ?jitter ?seed ?faults ?retry
    ?resilience ?watch scenario =
  let config = config_of image in
  if Config_record.mode config <> Config_record.Distributed then
    invalid_arg "Adps.execute: image is not in distributed mode";
  match load_distribution image with
  | None -> invalid_arg "Adps.execute: image holds no distribution"
  | Some (classifier, distribution) ->
      execute_with_policy ?loggers ?tracer ?metrics ~registry ~classifier
        ~policy:(Factory.By_classification distribution) ~network ?jitter ?seed ?faults ?retry
        ?resilience ?watch scenario

(* Pool runs report fleet counters alongside the shared stats. When
   the install-time identity gate rewrote a pool of one into the plain
   resilience path, the RTE holds no fleet state — synthesize the
   counters from the shared set (promotions, splits and resizes are
   structurally zero with a single host). *)
let execute_fleet ?loggers ?tracer ?metrics ~image ~registry ~network ?jitter ?seed ?faults
    ?retry ~fleet scenario =
  let config = config_of image in
  if Config_record.mode config <> Config_record.Distributed then
    invalid_arg "Adps.execute_fleet: image is not in distributed mode";
  match load_distribution image with
  | None -> invalid_arg "Adps.execute_fleet: image holds no distribution"
  | Some (classifier, distribution) ->
      let stats, fs =
        execute_with_policy_full ?loggers ?tracer ?metrics ~registry ~classifier
          ~policy:(Factory.By_classification distribution) ~network ?jitter ?seed ?faults
          ?retry ~fleet scenario
      in
      let fs =
        match fs with
        | Some fs -> fs
        | None ->
            {
              Rte.fs_breaker_opens = stats.es_breaker_opens;
              fs_breaker_closes = stats.es_breaker_closes;
              fs_failovers = stats.es_failovers;
              fs_failbacks = stats.es_failbacks;
              fs_migrations = stats.es_migrations;
              fs_stranded_calls = stats.es_stranded_calls;
              fs_rescued_calls = stats.es_rescued_calls;
              fs_promotions = 0;
              fs_splits = 0;
              fs_resizes = 0;
              fs_inter_host_calls = 0;
              fs_final_rung = stats.es_final_rung;
              fs_final_hosts = 1;
              fs_final_shards = 1;
            }
      in
      (stats, fs)

(* Build the resilience ladder for a profiled image: rung 0 is the
   image's stored distribution when it has one (so failback restores
   exactly the analyzed cut) and a fresh solve of the same session
   otherwise; later rungs re-price the same session under the
   failure-mode profiles of [net]. *)
let fallback_ladder ?algorithm ?profiler ?metrics ?pool ?modes ~image ~net () =
  let session = analysis_session ?profiler image in
  let primary = Option.map snd (load_distribution image) in
  Fallback.compute ?algorithm ?profiler ?metrics ?pool ?modes ?primary session ~net ()

(* Build the pool-elastic ladder for a profiled image: the two-host
   ladder above widened to [hosts] machines, sharded and priced over
   the same analysis session. *)
let pool_fallback_ladder ?algorithm ?profiler ?metrics ?pool ?modes ?replicas ?map ~hosts
    ~image ~net () =
  let session = analysis_session ?profiler image in
  let primary = Option.map snd (load_distribution image) in
  let base = Fallback.compute ?algorithm ?profiler ?metrics ?pool ?modes ?primary session ~net () in
  Fallback.pool_ladder ?replicas ?map ~hosts session ~net base

(* Build a watch for a profiled image: the drift loop re-prices the
   same session the offline analyzer would use, under the same merged
   constraints, so a re-cut is exactly what a fresh analyze of the
   shifted usage would choose. *)
let watch ?profiler ?extra_constraints ?threshold ?check_every ?min_dwell_us ?min_window
    ?half_life_us ?sample_every ?tap ~image ~net () =
  let session = analysis_session ?profiler ?extra_constraints image in
  Rte.watch ?threshold ?check_every ?min_dwell_us ?min_window ?half_life_us ?sample_every
    ?tap ~net session
