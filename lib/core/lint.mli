(** Remotability linter.

    Structured diagnostics over an image's static interface metadata,
    with stable codes so build systems can filter them:

    - [CG000] (info) — image carries no static metadata; flow checks
      skipped.
    - [CG001] (warning) — non-remotable method on an exported
      interface.
    - [CG002] (warning) — an otherwise-remotable interface passes a
      non-remotable interface pointer (the opaque handle escapes one
      hop further than CG001 shows).
    - [CG003] (warning) — a class references both GUI and storage APIs;
      the GUI pin wins (see {!Static_analysis.class_verdict}).
    - [CG004] (warning) — class is creatable but unreachable from the
      main program.
    - [CG005] (warning) — a method carries an unbounded recursive
      structure (sanitized to an opaque marker at image build time).
    - [CG006] (info) — a static co-location pair or client pin derived
      by {!Interface_flow}; on PhotoDraw these lines are Figure 5's
      "black web".
    - [CG007] (error) — a computed or proposed distribution violates a
      static constraint; raised as {!Rejected} by
      {!Adps.analyze}.

    The [Coign_verify] explorer emits three further codes through the
    same diagnostic type ([coign verify]):

    - [CG008] (error) — a reachable failover interleaving separates two
      classifications joined by a non-remotable interface, including
      transient mid-migration placements.
    - [CG009] (error) — a reachable migration moves a classification
      the static remotability facts mark unsafe (the ladder's table
      disagrees with the derived truth, and the disagreement is
      exercisable).
    - [CG010] — a dead rung: (error) an open breaker that can never
      admit a half-open probe, or (warning) a ladder rung no explored
      interleaving ever installs. *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type diagnostic = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
}

exception Rejected of diagnostic list
(** Raised by analysis when a distribution would violate a static
    constraint (CG007 diagnostics). *)

val diag : string -> severity -> string -> string -> diagnostic
(** [diag code severity subject message]. *)

val order : diagnostic list -> diagnostic list
(** Deterministic report order: by code, then subject, then message. *)

val lint_meta : Coign_image.Image_meta.t -> diagnostic list
(** The metadata-only checks (CG001/CG002/CG004/CG005/CG006), unordered. *)

val lint_image : Coign_image.Binary_image.t -> diagnostic list
(** All checks applicable to the image, ordered. Runs the interface-flow
    analysis when the image has metadata. *)

val worst : diagnostic list -> severity option

val pp_text : Format.formatter -> diagnostic list -> unit
(** One [severity code subject: message] line per diagnostic. *)

val to_json : diagnostic list -> string
(** The diagnostics as a JSON array of objects with [code], [severity],
    [subject] and [message] string fields. *)
