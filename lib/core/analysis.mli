(** The profile analysis engine (paper §2).

    Combines component communication profiles and location constraints
    into an abstract ICC graph, prices it against a network profile to
    get a concrete graph of potential communication time, and cuts the
    graph with the lift-to-front minimum-cut algorithm to choose the
    client/server distribution with minimal communication time.

    Nodes are instance classifications; two terminals stand for the
    client and server machines. Edges carry, in nanoseconds, the
    communication time the pair would pay if separated. Non-remotable
    interfaces, pair-wise constraints, and absolute pins become
    infinite-capacity edges, so the minimum cut can never violate
    them. *)

type distribution = {
  placement : Constraints.location array;  (** indexed by classification *)
  cut_ns : int;           (** capacity of the chosen cut *)
  predicted_comm_us : float;
      (** communication time of the distribution as priced by the
          network profile (equals [cut_ns / 1000] apart from rounding) *)
  server_count : int;     (** classifications placed on the server *)
  node_count : int;
  algorithm : Coign_flowgraph.Mincut.algorithm;
}

(** {1 Two-stage engine}

    Stage 1 ({!Session.create}) builds everything network-independent
    once per profile: the abstract ICC graph ({!Icc_graph}) and a CSR
    flow arena holding every potential edge — the constraint/pin/
    non-remotable infinite edges plus one zero-capacity slot per
    repriceable traffic pair. Stage 2 ({!Session.solve}) prices those
    pairs against one concrete network profile by writing capacities
    straight into the arena's flat arrays and cuts in place with
    preallocated solver scratch; per-profile cost tables are memoized
    (keyed by profile identity) so sweeps and fallback ladders compile
    each network once. Solving the same session across many networks
    (the paper's §4.4 adaptivity sweeps) therefore allocates almost
    nothing per round, and is guaranteed — by construction and by
    property test — to produce bit-identical distributions to a fresh
    {!choose}. *)

module Session : sig
  type t

  val create :
    ?profiler:Coign_obs.Profiler.t ->
    classifier:Classifier.t ->
    icc:Icc.t ->
    constraints:Constraints.t ->
    unit ->
    t
  (** Build the network-independent stage: abstract graph, constraint
      edges, repriceable pair list. With [profiler], the build records
      under the ["icc_graph_build"] phase. *)

  val solve :
    ?algorithm:Coign_flowgraph.Mincut.algorithm ->
    ?profiler:Coign_obs.Profiler.t ->
    ?metrics:Coign_obs.Metrics.registry ->
    ?scale:Icc_graph.scale ->
    t ->
    net:Coign_netsim.Net_profiler.t ->
    distribution
  (** Price the session's traffic pairs against [net], cut, and trim —
      exactly {!choose} on the session's profile, without rebuilding
      stage 1. Reusable: each call replaces the previous pricing.

      With [profiler], pricing and cutting record under the ["pricing"]
      and ["cut"] phases; with [metrics], each solve updates the
      [coign_analysis_*] instruments. Neither changes the
      distribution.

      With [scale] (arrays of length {!Icc_graph.pair_count} of
      {!graph}), each pair's profiled traffic is rescaled before
      pricing ({!Icc_graph.price_scaled_into}) — the online
      re-partitioning path, where a decayed observation window
      reweights the profile's per-pair message counts and byte volumes
      while keeping its message-size mix. Omitted, pricing is
      bit-identical to the offline engine. *)

  val solve_many :
    ?algorithm:Coign_flowgraph.Mincut.algorithm ->
    ?profiler:Coign_obs.Profiler.t ->
    ?metrics:Coign_obs.Metrics.registry ->
    ?pool:Coign_util.Parallel.t ->
    t ->
    nets:Coign_netsim.Net_profiler.t list ->
    distribution list
  (** Solve one session against many network profiles, in input order.
      With [pool], pricing runs domain-parallel: each participating
      domain solves on its own {!copy} (private arena and scratch,
      shared immutable abstract graph), and the pool's order-preserving
      map makes the result list bit-identical to the sequential
      path. *)

  val copy : t -> t
  (** An independent session sharing the immutable abstract graph but
      owning its own flow arena, solver scratch and pricing buffers —
      solve copies concurrently from different domains (one session
      alone must not be solved from two domains at once, since pricing
      mutates its capacities). *)

  val classifier : t -> Classifier.t
  val constraints : t -> Constraints.t

  val node_count : t -> int
  (** Classifications in the analyzed graph. *)

  val graph : t -> Icc_graph.t
  (** The underlying abstract ICC graph. *)

  val migration_safety : t -> bool array
  (** Per-classification static migration-safety facts for the
      resilience layer ({!Fallback}, {!Rte}): a classification is safe
      to migrate live between distributions iff it touches no
      non-remotable ICC edge and is not co-location-chained
      (transitively) to one that does. *)
end

val choose :
  ?algorithm:Coign_flowgraph.Mincut.algorithm ->
  ?profiler:Coign_obs.Profiler.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  classifier:Classifier.t ->
  icc:Icc.t ->
  constraints:Constraints.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  distribution
(** Run the engine. Every classification known to the classifier gets a
    node even if it never communicated (such nodes land on the client).
    The main program (classification -1) is treated as pinned to the
    client. Equivalent to {!Session.create} followed by one
    {!Session.solve}. *)

val location_of : distribution -> int -> Constraints.location
(** Placement of a classification; classifications outside the analyzed
    range (new at run time) default to [Client]. [-1] (main) is
    [Client]. *)

type violation =
  | Split_pair of string * string
      (** a class co-location pair has classifications on both sides *)
  | Split_classifications of int * int
  | Pin_violated of string * Constraints.location

val validate :
  classifier:Classifier.t -> constraints:Constraints.t -> distribution ->
  violation list
(** Prove a distribution honours every constraint. Empty for any
    distribution {!choose} computed from the same constraints;
    non-empty for hand-forced or stale placements that split a
    co-location pair or contradict a pin — the analyze-time replacement
    for {!Coign_sim.Replay}'s runtime remotability abort. *)

val pp_violation : Format.formatter -> violation -> unit

val server_classifications : distribution -> int list

val comm_time_under :
  icc:Icc.t -> net:Coign_netsim.Net_profiler.t ->
  placement:(int -> Constraints.location) -> float
(** Predicted communication time (µs) of an arbitrary placement: the
    priced traffic of every ICC entry whose endpoints are separated.
    Useful for evaluating default/manual distributions against Coign's.
    Calls over non-remotable interfaces that the placement separates
    are priced as if remotable (a real run would fault — see
    {!Rte}). *)

val price_entry : Coign_netsim.Net_profiler.t -> Icc.entry -> float
(** Time (µs) for one ICC entry's messages if its endpoints were
    separated: per-bucket message count times the fitted per-message
    time at the bucket's mean size. *)

val encode : distribution -> string
val decode : string -> distribution
(** Round-trips placements and metadata (for the config record). *)
