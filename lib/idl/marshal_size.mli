(** Deep-copy marshaled-size computation (the DCOM wire-size model).

    DCOM moves call parameters between machines by deep copy; the
    profiling informer measures "the number of bytes that would be
    transferred from one machine to another if the two communicating
    components were distributed" (paper §2). This module is that
    measurement: a type-directed walk of a call's parameters producing
    request and reply byte counts, following NDR-like encoding rules
    (fixed scalar widths, counted strings/arrays, pointer null-flags,
    fixed-size object references for interface pointers). *)

type error =
  | Not_remotable of string
      (** The value contains an [Opaque] handle; DCOM cannot marshal the
          call (a non-distributable interface, shown as solid black
          lines in the paper's figures). *)
  | Type_mismatch of { expected : Idl_type.t; got : Value.t }

val pp_error : Format.formatter -> error -> unit

val scalar_overhead : int
(** Per-message DCOM/RPC header bytes added to every request and every
    reply. *)

val objref_size : int
(** Marshaled size of an interface pointer (an OBJREF). *)

exception Err of error
(** Exception form of {!error}, raised by the [_exn] walks. *)

val value_size : Idl_type.t -> Value.t -> (int, error) result
(** Deep-copy size of a single value against its declared type. *)

val value_size_exn : Idl_type.t -> Value.t -> int
(** {!value_size} returning a plain int and raising [Err] on failure.
    The success path allocates nothing — no result cells, closures or
    intermediate lists — so the profiling informer can size every
    intercepted call without touching the minor heap. *)

type call_size = { request : int; reply : int }
(** Bytes moved caller->callee ([In] and [In_out] parameters plus
    headers) and callee->caller ([Out], [In_out], return value plus
    headers). *)

val total : call_size -> int

val call :
  Idl_type.method_sig -> args:Value.t list -> result:Value.t ->
  (call_size, error) result
(** Size of one complete method invocation. [args] must match the
    method's parameter list positionally; an [Out] parameter's slot in
    [args] contributes only to the reply. *)

val call_request_only :
  Idl_type.method_sig -> args:Value.t list -> (int, error) result
(** Request-direction size alone, for loggers that record the two
    directions as separate messages. *)
