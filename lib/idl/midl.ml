(* Compiled form: a flat array of opcodes interpreted against the value
   tree. Struct/array/pointer bodies are expressed by sub-programs
   referenced by index, which keeps the interpreter non-recursive over
   opcodes within one level and mirrors how format strings embed offsets
   to nested descriptors. *)

type op =
  | O_void
  | O_fixed of int            (* scalar of fixed width *)
  | O_counted_str
  | O_counted_blob
  | O_array of int            (* sub-program index for element *)
  | O_struct of int list      (* sub-program index per field *)
  | O_ptr of int              (* sub-program index for pointee *)
  | O_iface
  | O_opaque of string

type proc = { programs : op array; ty : Idl_type.t }

let compile ty =
  let programs = ref [] in
  let count = ref 0 in
  (* Returns the index of the compiled sub-program for [ty]. *)
  let rec go ty =
    let idx = !count in
    incr count;
    (* Reserve the slot before compiling children so indices are stable. *)
    programs := (idx, O_void) :: !programs;
    let op =
      match ty with
      | Idl_type.Void -> O_void
      | Idl_type.Int32 -> O_fixed 4
      | Idl_type.Int64 -> O_fixed 8
      | Idl_type.Double -> O_fixed 8
      | Idl_type.Bool -> O_fixed 4
      | Idl_type.Str -> O_counted_str
      | Idl_type.Blob -> O_counted_blob
      | Idl_type.Array elt -> O_array (go elt)
      | Idl_type.Struct fields -> O_struct (List.map (fun (_, t) -> go t) fields)
      | Idl_type.Ptr pointee -> O_ptr (go pointee)
      | Idl_type.Iface _ -> O_iface
      | Idl_type.Opaque tag -> O_opaque tag
    in
    programs := (idx, op) :: List.remove_assoc idx !programs;
    idx
  in
  let root = go ty in
  assert (root = 0);
  let arr = Array.make !count O_void in
  List.iter (fun (i, op) -> arr.(i) <- op) !programs;
  { programs = arr; ty }

let opcount p = Array.length p.programs

let rec same_length a b =
  match (a, b) with
  | [], [] -> true
  | _ :: a, _ :: b -> same_length a b
  | _, _ -> false

(* The interpreter the profiling informer runs on every intercepted
   call.  Like {!Marshal_size.value_size_exn} it returns plain ints and
   raises {!Marshal_size.Err}, so the success path is allocation-free:
   no result boxing, no fold closures, no length pre-passes. *)
let rec run_exn p idx v =
  match (p.programs.(idx), v) with
  | O_void, Value.Unit -> 0
  | O_fixed n, (Value.Int _ | Value.Float _ | Value.Bool _) -> n
  | O_counted_str, Value.Str s -> 4 + String.length s
  | O_counted_blob, Value.Blob n when n >= 0 -> 4 + n
  | O_array elt, Value.Arr vs -> 4 + run_array p elt vs 0
  | O_struct fields, Value.Struct fvs when same_length fields fvs ->
      run_struct p fields fvs 0
  | O_ptr _, Value.Null -> 4
  | O_ptr pointee, Value.Ref inner -> 4 + run_exn p pointee inner
  | O_iface, Value.Iface_ref _ -> Marshal_size.objref_size
  | O_iface, Value.Null -> 4
  | O_opaque tag, Value.Opaque_handle _ ->
      raise (Marshal_size.Err (Marshal_size.Not_remotable tag))
  | _, got ->
      raise (Marshal_size.Err (Marshal_size.Type_mismatch { expected = p.ty; got }))

and run_array p elt vs acc =
  match vs with
  | [] -> acc
  | v :: tl -> run_array p elt tl (acc + run_exn p elt v)

and run_struct p fields fvs acc =
  match (fields, fvs) with
  | [], [] -> acc
  | fidx :: fields', (_, fv) :: fvs' ->
      run_struct p fields' fvs' (acc + run_exn p fidx fv)
  | _, _ -> assert false (* guarded by [same_length] *)

let size_with_exn p v = run_exn p 0 v

let size_with p v =
  match run_exn p 0 v with
  | n -> Ok n
  | exception Marshal_size.Err e -> Error e

(* Interface-pointer walk: retain only paths that can reach an Iface.
   Paths that cannot are compiled to Skip, so the distribution informer
   touches the minimum number of value nodes. *)
type iop =
  | I_skip
  | I_take                     (* this position is an interface pointer *)
  | I_array of int
  | I_struct of (int * int) list  (* (field position, sub-program) for
                                     fields that can carry ifaces *)
  | I_ptr of int

type iface_proc = { iprograms : iop array }

let compile_iface_walk ty =
  let programs = ref [] in
  let count = ref 0 in
  let rec go ty =
    let idx = !count in
    incr count;
    programs := (idx, I_skip) :: !programs;
    let op =
      match ty with
      | Idl_type.Iface _ -> I_take
      | Idl_type.Array elt ->
          if Idl_type.contains_iface elt then I_array (go elt) else I_skip
      | Idl_type.Struct fields ->
          let interesting =
            List.filteri (fun _ (_, t) -> Idl_type.contains_iface t) fields
          in
          if interesting = [] then I_skip
          else
            I_struct
              (List.concat
                 (List.mapi
                    (fun pos (_, t) ->
                      if Idl_type.contains_iface t then [ (pos, go t) ] else [])
                    fields))
      | Idl_type.Ptr pointee ->
          if Idl_type.contains_iface pointee then I_ptr (go pointee) else I_skip
      | Idl_type.Void | Idl_type.Int32 | Idl_type.Int64 | Idl_type.Double
      | Idl_type.Bool | Idl_type.Str | Idl_type.Blob | Idl_type.Opaque _ ->
          I_skip
    in
    programs := (idx, op) :: List.remove_assoc idx !programs;
    idx
  in
  let root = go ty in
  assert (root = 0);
  let arr = Array.make !count I_skip in
  List.iter (fun (i, op) -> arr.(i) <- op) !programs;
  { iprograms = arr }

let iface_walk_trivial p = p.iprograms.(0) = I_skip

let handles_with p v =
  let acc = ref [] in
  let rec run idx v =
    match (p.iprograms.(idx), v) with
    | I_skip, _ -> ()
    | I_take, Value.Iface_ref h -> acc := h :: !acc
    | I_take, _ -> ()
    | I_array elt, Value.Arr vs -> List.iter (run elt) vs
    | I_array _, _ -> ()
    | I_struct fields, Value.Struct fvs ->
        let fvs = Array.of_list fvs in
        List.iter
          (fun (pos, sub) -> if pos < Array.length fvs then run sub (snd fvs.(pos)))
          fields
    | I_struct _, _ -> ()
    | I_ptr sub, Value.Ref inner -> run sub inner
    | I_ptr _, _ -> ()
  in
  run 0 v;
  List.rev !acc

type method_procs = {
  request_procs : (Idl_type.direction * proc) list;
  ret_proc : proc;
  iface_procs : iface_proc list;
  ret_iface_proc : iface_proc;
  remotable : bool;
}

let compile_method (msig : Idl_type.method_sig) =
  {
    request_procs = List.map (fun p -> (p.Idl_type.pdir, compile p.pty)) msig.params;
    ret_proc = compile msig.ret;
    iface_procs = List.map (fun p -> compile_iface_walk p.Idl_type.pty) msig.params;
    ret_iface_proc = compile_iface_walk msig.ret;
    remotable = Idl_type.method_remotable msig;
  }

let rec call_size_exn req rep ps vs =
  match (ps, vs) with
  | [], [] -> (req, rep)
  | (dir, proc) :: ps', v :: vs' -> (
      let s = run_exn proc 0 v in
      match dir with
      | Idl_type.In -> call_size_exn (req + s) rep ps' vs'
      | Idl_type.Out -> call_size_exn req (rep + s) ps' vs'
      | Idl_type.In_out -> call_size_exn (req + s) (rep + s) ps' vs')
  | _, _ -> assert false (* guarded by [same_length] *)

let method_call_size procs ~args ~result =
  if not (same_length args procs.request_procs) then
    Error
      (Marshal_size.Type_mismatch { expected = Idl_type.Void; got = Value.Arr args })
  else
    match
      let req, rep = call_size_exn 0 0 procs.request_procs args in
      let ret = run_exn procs.ret_proc 0 result in
      {
        Marshal_size.request = Marshal_size.scalar_overhead + req;
        reply = Marshal_size.scalar_overhead + rep + ret;
      }
    with
    | cs -> Ok cs
    | exception Marshal_size.Err e -> Error e
