type error =
  | Not_remotable of string
  | Type_mismatch of { expected : Idl_type.t; got : Value.t }

let pp_error ppf = function
  | Not_remotable tag -> Format.fprintf ppf "not remotable: opaque<%s>" tag
  | Type_mismatch { expected; got } ->
      Format.fprintf ppf "type mismatch: expected %a, got %a" Idl_type.pp expected
        Value.pp got

(* Sizes follow NDR-ish conventions: 4-byte length prefixes, 4-byte
   null-flags for unique pointers, 8-byte alignment ignored (we model
   payload, not padding). OBJREF size approximates DCOM's standard
   marshaled interface reference. *)
let scalar_overhead = 48
let objref_size = 68
let len_prefix = 4
let ptr_flag = 4

let ( let* ) = Result.bind

exception Err of error

(* The profiling informer sizes every intercepted call, so the walk
   below is the hottest code in profiling mode.  It returns plain ints
   and signals failure through [Err]: no [Ok]/[Error] cells, no fold
   closures, no [List.length] pre-passes — the success path does not
   touch the minor heap (a tested property). *)

let rec same_length a b =
  match (a, b) with
  | [], [] -> true
  | _ :: a, _ :: b -> same_length a b
  | _, _ -> false

let rec value_size_exn ty v =
  match (ty, v) with
  | Idl_type.Void, Value.Unit -> 0
  | Idl_type.Int32, Value.Int _ -> 4
  | Idl_type.Int64, Value.Int _ -> 8
  | Idl_type.Double, Value.Float _ -> 8
  | Idl_type.Bool, Value.Bool _ -> 4
  | Idl_type.Str, Value.Str s -> len_prefix + String.length s
  | Idl_type.Blob, Value.Blob n when n >= 0 -> len_prefix + n
  | Idl_type.Array elt, Value.Arr vs -> len_prefix + array_size elt vs 0
  | Idl_type.Struct fts, Value.Struct fvs when same_length fts fvs ->
      struct_size ty v fts fvs 0
  | Idl_type.Ptr _, Value.Null -> ptr_flag
  | Idl_type.Ptr pointee, Value.Ref inner ->
      ptr_flag + value_size_exn pointee inner
  | Idl_type.Iface _, Value.Iface_ref _ -> objref_size
  | Idl_type.Iface _, Value.Null -> ptr_flag
  | Idl_type.Opaque tag, Value.Opaque_handle _ -> raise (Err (Not_remotable tag))
  | _, _ -> raise (Err (Type_mismatch { expected = ty; got = v }))

and array_size elt vs acc =
  match vs with
  | [] -> acc
  | v :: tl -> array_size elt tl (acc + value_size_exn elt v)

(* [ty]/[v] are the enclosing struct, carried only for the mismatch
   payload — a field-name disagreement reports the whole struct, as the
   result-based walk always did. *)
and struct_size ty v fts fvs acc =
  match (fts, fvs) with
  | [], [] -> acc
  | (fname, fty) :: fts', (vname, fv) :: fvs' ->
      if String.equal fname vname then
        struct_size ty v fts' fvs' (acc + value_size_exn fty fv)
      else raise (Err (Type_mismatch { expected = ty; got = v }))
  | _, _ -> raise (Err (Type_mismatch { expected = ty; got = v }))

let value_size ty v =
  match value_size_exn ty v with
  | n -> Ok n
  | exception Err e -> Error e

type call_size = { request : int; reply : int }

let total { request; reply } = request + reply

let call (msig : Idl_type.method_sig) ~args ~result =
  if List.length args <> List.length msig.params then
    Error
      (Type_mismatch
         { expected = Idl_type.Struct (List.map (fun p -> (p.Idl_type.pname, p.pty)) msig.params);
           got = Value.Arr args })
  else
    let* req, rep =
      List.fold_left2
        (fun acc (p : Idl_type.param) v ->
          let* req, rep = acc in
          let* s = value_size p.pty v in
          match p.pdir with
          | Idl_type.In -> Ok (req + s, rep)
          | Idl_type.Out -> Ok (req, rep + s)
          | Idl_type.In_out -> Ok (req + s, rep + s))
        (Ok (0, 0))
        msig.params args
    in
    let* ret = value_size msig.ret result in
    Ok { request = scalar_overhead + req; reply = scalar_overhead + rep + ret }

let call_request_only msig ~args =
  if List.length args <> List.length msig.Idl_type.params then
    Error
      (Type_mismatch
         { expected =
             Idl_type.Struct
               (List.map (fun p -> (p.Idl_type.pname, p.pty)) msig.Idl_type.params);
           got = Value.Arr args })
  else
    let* req =
      List.fold_left2
        (fun acc (p : Idl_type.param) v ->
          let* acc = acc in
          match p.pdir with
          | Idl_type.Out -> Ok acc
          | Idl_type.In | Idl_type.In_out ->
              let* s = value_size p.pty v in
              Ok (acc + s))
        (Ok 0) msig.Idl_type.params args
    in
    Ok (scalar_overhead + req)
