(** IDL-like parameter type language.

    COM interfaces described in IDL carry enough static metadata for
    DCOM to deep-copy call parameters between address spaces. Coign's
    profiling informer reuses exactly that metadata to measure how many
    bytes an interface call *would* move if the caller and callee were
    on different machines (paper §2, §3.2). This module is the type
    half; {!Marshal_size} computes sizes and {!Midl} compiles types to
    flat descriptors the way the MIDL compiler emits format strings. *)

type t =
  | Void                          (** no data (e.g. a [unit] return) *)
  | Int32
  | Int64
  | Double
  | Bool
  | Str                           (** counted 8-bit string *)
  | Blob                          (** counted opaque byte buffer *)
  | Array of t                    (** conformant array *)
  | Struct of (string * t) list   (** by-value record *)
  | Ptr of t                      (** unique pointer: null or deep copy *)
  | Iface of string               (** interface pointer; marshals as an
                                      object reference (name is the
                                      interface's static type) *)
  | Opaque of string              (** raw pointer/handle with no IDL
                                      description; NOT remotable (e.g. a
                                      shared-memory region handle) *)

type direction = In | Out | In_out

type param = { pname : string; pty : t; pdir : direction }

type method_sig = {
  mname : string;
  params : param list;
  ret : t;
}

val param : ?dir:direction -> string -> t -> param
(** [param name ty] with [dir] defaulting to [In]. *)

val method_ : ?ret:t -> string -> param list -> method_sig
(** [method_ name params] with [ret] defaulting to [Void]. *)

val remotable : t -> bool
(** [true] iff the type contains no [Opaque] component, i.e. DCOM could
    marshal it. *)

val method_remotable : method_sig -> bool
(** All parameters and the return type are remotable. *)

val finite : t -> bool
(** [false] iff the value is cyclic (built with [let rec], the analog
    of an unbounded recursive struct): the marshaler would never
    terminate on it. Detected by physical identity of ancestor nodes. *)

val contains_iface : t -> bool
(** Whether values of this type can carry interface pointers (needed by
    the distribution informer, which walks parameters only far enough
    to find interface pointers, §3.2). *)

val pp : Format.formatter -> t -> unit

val pp_method : Format.formatter -> method_sig -> unit
