type t =
  | Void
  | Int32
  | Int64
  | Double
  | Bool
  | Str
  | Blob
  | Array of t
  | Struct of (string * t) list
  | Ptr of t
  | Iface of string
  | Opaque of string

type direction = In | Out | In_out

type param = { pname : string; pty : t; pdir : direction }

type method_sig = { mname : string; params : param list; ret : t }

let param ?(dir = In) pname pty = { pname; pty; pdir = dir }

let method_ ?(ret = Void) mname params = { mname; params; ret }

let rec remotable = function
  | Void | Int32 | Int64 | Double | Bool | Str | Blob | Iface _ -> true
  | Opaque _ -> false
  | Array t | Ptr t -> remotable t
  | Struct fields -> List.for_all (fun (_, t) -> remotable t) fields

let method_remotable m =
  remotable m.ret && List.for_all (fun p -> remotable p.pty) m.params

(* Cyclic values are possible through [let rec] bindings (the analog of
   a self-referential struct in an IDL file). The marshaler would
   recurse forever on one, so the static analyzer needs to detect them:
   walk the structure keeping the physical identities of the enclosing
   nodes; revisiting an ancestor block proves a cycle. Constant
   constructors are shared and can never be cyclic, so only the
   recursive blocks are tracked. *)
let finite ty =
  let rec go ancestors t =
    match t with
    | Void | Int32 | Int64 | Double | Bool | Str | Blob | Iface _ | Opaque _ -> true
    | Array u | Ptr u ->
        (not (List.memq t ancestors)) && go (t :: ancestors) u
    | Struct fields ->
        (not (List.memq t ancestors))
        && List.for_all (fun (_, u) -> go (t :: ancestors) u) fields
  in
  go [] ty

let rec contains_iface = function
  | Iface _ -> true
  | Void | Int32 | Int64 | Double | Bool | Str | Blob | Opaque _ -> false
  | Array t | Ptr t -> contains_iface t
  | Struct fields -> List.exists (fun (_, t) -> contains_iface t) fields

let rec pp ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Int32 -> Format.pp_print_string ppf "int32"
  | Int64 -> Format.pp_print_string ppf "int64"
  | Double -> Format.pp_print_string ppf "double"
  | Bool -> Format.pp_print_string ppf "bool"
  | Str -> Format.pp_print_string ppf "string"
  | Blob -> Format.pp_print_string ppf "blob"
  | Array t -> Format.fprintf ppf "%a[]" pp t
  | Struct fields ->
      Format.fprintf ppf "struct{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf (name, t) -> Format.fprintf ppf "%s:%a" name pp t))
        fields
  | Ptr t -> Format.fprintf ppf "%a*" pp t
  | Iface name -> Format.fprintf ppf "%s*" name
  | Opaque tag -> Format.fprintf ppf "opaque<%s>" tag

let pp_dir ppf = function
  | In -> Format.pp_print_string ppf "in"
  | Out -> Format.pp_print_string ppf "out"
  | In_out -> Format.pp_print_string ppf "in,out"

let pp_method ppf m =
  Format.fprintf ppf "%a %s(@[%a@])" pp m.ret m.mname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf p -> Format.fprintf ppf "[%a] %a %s" pp_dir p.pdir pp p.pty p.pname))
    m.params
