(* Compile an image's static facts, its fallback ladder and the breaker
   policy into a finite component-interaction model.

   The raw system is too large to enumerate directly — every instance
   placement would be a state — so construction performs a symmetry
   reduction up front: classifications are partitioned into groups that
   are interchangeable with respect to every checked invariant.  Two
   classifications share a group iff they have the same per-rung
   placement vector, the same ladder migration-safety bit and the same
   derived (truth) safety bit — and neither touches a non-remotable ICC
   edge.  Classifications incident to a non-remotable edge are split
   into singleton groups so the I1 crossing check stays exact per
   endpoint.

   Soundness of tracking one location per group: members of a group are
   only ever connected to the rest of the graph by remotable edges
   (non-remotable endpoints are singletons), they share safety bits, and
   they share placement targets on every rung — so any state that
   distinguishes two members differs from its merged image only on
   remotable separations, which no invariant observes. *)

open Coign_core
module Health = Coign_netsim.Health

type group = {
  g_id : int;
  g_members : int list; (* classifications; -1 is the main program *)
  g_subject : string; (* representative class name, for diagnostics *)
  g_targets : Constraints.location array; (* placement per rung *)
  g_ladder_safe : bool; (* what the ladder's table will act on *)
  g_truth_safe : bool; (* what the static facts actually derive *)
}

type edge = {
  e_a : int; (* group ids, e_a < e_b *)
  e_b : int;
  e_iface : string; (* sample interface; a non-remotable one if any *)
  e_remotable : bool; (* some remotable traffic crosses the pair *)
  e_non_remotable : bool; (* some non-remotable traffic does *)
}

type t = {
  m_groups : group array;
  m_edges : edge array;
  m_rung_names : string array;
  m_policy : Health.policy;
  m_cooloffs : float array; (* escalation chain, base to cap *)
  m_classifications : int; (* classifications folded in, incl. main *)
  m_pool_sizes : int array; (* server pool hosts per rung; all 1 = two-host model *)
}

let rung_count m = Array.length m.m_rung_names
let pool_size m r = m.m_pool_sizes.(r)

(* The host a server-side group belongs on under a rung's pool.  The
   RTE pins migration-unsafe components to shard 0 — host 0, which
   survives every resize — and shards the rest by a fixed map folded
   by modulo, so a group's host only changes when the pool size does.
   The model reads the *ladder's* table here, exactly as the RTE does:
   a lying table shards a truth-unsafe group onto a moving host, and
   the explorer surfaces the resulting migrations as CG008/CG009. *)
let target_host m r g =
  let p = m.m_pool_sizes.(r) in
  if p <= 1 || not g.g_ladder_safe then 0 else g.g_id mod p
let group_count m = Array.length m.m_groups

(* A group is risky when the ladder's table will migrate it but the
   static facts say it must not move: exactly the migrations that can
   manifest I1/I4 violations, so the explorer interleaves each one
   individually.  (Non-remotable adjacency implies truth-unsafe, so
   this single predicate covers both.) *)
let risky g = g.g_ladder_safe && not g.g_truth_safe

(* The cooloff values reachable by escalation: c, min(c*m, cap), ... to
   fixpoint.  Finite because the multiplier is >= 1 and capped. *)
let cooloff_chain (p : Health.policy) =
  let rec go acc c =
    let c' = Float.min (c *. p.Health.hp_cooloff_mult) p.Health.hp_cooloff_max_us in
    if c' = c then List.rev (c :: acc) else go (c :: acc) c'
  in
  Array.of_list (go [] p.Health.hp_cooloff_us)

let cooloff_index m c =
  let rec find i =
    if i >= Array.length m.m_cooloffs then
      invalid_arg
        (Printf.sprintf "Verify.Model: cooloff %g outside the escalation chain" c)
    else if Int64.bits_of_float m.m_cooloffs.(i) = Int64.bits_of_float c then i
    else find (i + 1)
  in
  find 0

let max_pool_size = 3

let build ?(policy = Health.default_policy) ?pool_sizes ~classifier ~icc ~ladder ~truth () =
  let rungs = Fallback.rung_count ladder in
  let pool_sizes =
    match pool_sizes with
    | None -> Array.make rungs 1
    | Some l ->
        let a = Array.of_list l in
        if Array.length a <> rungs then
          invalid_arg "Verify.Model.build: pool_sizes length must match the rung count";
        Array.iter
          (fun p ->
            if p < 1 || p > max_pool_size then
              invalid_arg
                (Printf.sprintf
                   "Verify.Model.build: pool sizes must be in [1, %d] to keep exploration \
                    bounded"
                   max_pool_size))
          a;
        a
  in
  let n = Array.length truth in
  let place r c =
    Analysis.location_of (Fallback.rung ladder r).Fallback.rg_distribution c
  in
  let members = Array.init (n + 1) (fun i -> i - 1) in
  let non_remotable_adjacent = Hashtbl.create 16 in
  List.iter
    (fun (e : Icc.entry) ->
      if (not e.Icc.remotable) && e.Icc.src <> e.Icc.dst then begin
        Hashtbl.replace non_remotable_adjacent e.Icc.src ();
        Hashtbl.replace non_remotable_adjacent e.Icc.dst ()
      end)
    (Icc.entries icc);
  let signature c =
    let targets = Array.init rungs (fun r -> place r c) in
    let ladder_safe = Fallback.migration_safe ladder c in
    let truth_safe = c >= 0 && c < n && truth.(c) in
    (targets, ladder_safe, truth_safe)
  in
  let subject c = if c < 0 then "main" else Classifier.class_of_classification classifier c in
  (* Partition: singletons for non-remotable endpoints, signature
     buckets for the rest.  Group order is deterministic: by lowest
     member classification. *)
  let buckets : ((Constraints.location array * bool * bool), int list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let singletons = ref [] in
  Array.iter
    (fun c ->
      if Hashtbl.mem non_remotable_adjacent c then singletons := c :: !singletons
      else
        let key = signature c in
        match Hashtbl.find_opt buckets key with
        | Some l -> l := c :: !l
        | None -> Hashtbl.add buckets key (ref [ c ]))
    members;
  let proto =
    List.map (fun c -> [ c ]) !singletons
    @ Hashtbl.fold (fun _ l acc -> List.rev !l :: acc) buckets []
  in
  let proto =
    List.sort (fun a b -> compare (List.hd a) (List.hd b))
      (List.map (fun l -> List.sort compare l) proto)
  in
  let groups =
    Array.of_list
      (List.mapi
         (fun i ms ->
           let c0 = List.hd ms in
           let targets, ladder_safe, truth_safe = signature c0 in
           {
             g_id = i;
             g_members = ms;
             g_subject = subject c0;
             g_targets = targets;
             g_ladder_safe = ladder_safe;
             g_truth_safe = truth_safe;
           })
         proto)
  in
  let group_of = Hashtbl.create 16 in
  Array.iter (fun g -> List.iter (fun c -> Hashtbl.replace group_of c g.g_id) g.g_members) groups;
  (* Aggregate ICC traffic onto group pairs; intra-group edges are
     dropped (members never separate — see the header argument). *)
  let acc : (int * int, string * bool * bool) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Icc.entry) ->
      if e.Icc.src <> e.Icc.dst then
        let ga = Hashtbl.find group_of e.Icc.src and gb = Hashtbl.find group_of e.Icc.dst in
        if ga <> gb then begin
          let key = (min ga gb, max ga gb) in
          let iface, rem, nonrem =
            match Hashtbl.find_opt acc key with
            | Some cur -> cur
            | None -> (e.Icc.iface, false, false)
          in
          let iface = if (not e.Icc.remotable) && not nonrem then e.Icc.iface else iface in
          Hashtbl.replace acc key
            (iface, rem || e.Icc.remotable, nonrem || not e.Icc.remotable)
        end)
    (Icc.entries icc);
  let edges =
    Hashtbl.fold
      (fun (a, b) (iface, rem, nonrem) l ->
        { e_a = a; e_b = b; e_iface = iface; e_remotable = rem; e_non_remotable = nonrem } :: l)
      acc []
  in
  let edges = List.sort (fun x y -> compare (x.e_a, x.e_b) (y.e_a, y.e_b)) edges in
  {
    m_groups = groups;
    m_edges = Array.of_list edges;
    m_rung_names =
      Array.init rungs (fun r -> (Fallback.rung ladder r).Fallback.rg_name);
    m_policy = policy;
    m_cooloffs = cooloff_chain policy;
    m_classifications = n + 1;
    m_pool_sizes = pool_sizes;
  }
