(* Explicit-state exploration of failover interleavings.

   States are (rung, canonical breaker snapshot, per-group locations);
   events are the model's alphabet below.  Breaker steps go through the
   real, pure [Health.transition] — the same function the RTE's mutable
   API delegates to — applied at canonical times so the float fields
   stay on a finite grid:

   - [sn_opened_at_us] is pinned to 0 and Observe is applied exactly at
     cooloff expiry.  Exact: the field is only read by Observe's expiry
     comparison, and the Cooloff event means "enough virtual time has
     passed".
   - [sn_consecutive_failures] is zeroed outside Closed.  Exact: the
     count is only read by the Closed trip check, and every path back
     into Closed (probe-quota success) zeroes it first.
   - [sn_probe_successes] is zeroed outside Half_open.  Exact: the count
     is only read by the close-quota check, and both trips and the
     Open -> Half_open transition zero it.
   - [sn_cooloff_us] ranges over the model's precomputed escalation
     chain; [Model.cooloff_index] maps it back by bit equality, which
     doubles as a cross-check that the shared transition function really
     produced a chain value.

   Partial-order reduction: all remotable traffic between separated
   groups drives one shared breaker, and the breaker's inputs carry no
   location information, so every separated pair collapses onto the two
   link events.  Likewise the safe (truth-safe, ladder-safe) groups
   can't violate any invariant in any order, so their pending moves
   collapse into one atomic Migrate_rest; only risky groups keep
   individual Migrate events. *)

open Coign_util
open Coign_core
module Health = Coign_netsim.Health

type event = Link_ok | Link_fail | Cooloff | Migrate of int | Migrate_rest | Promote of int

let event_id _m = function
  | Link_ok -> "link_ok"
  | Link_fail -> "link_fail"
  | Cooloff -> "cooloff"
  | Migrate g -> Printf.sprintf "migrate:%d" g
  | Migrate_rest -> "migrate_rest"
  | Promote g -> Printf.sprintf "promote:%d" g

let event_of_id m s =
  match s with
  | "link_ok" -> Some Link_ok
  | "link_fail" -> Some Link_fail
  | "cooloff" -> Some Cooloff
  | "migrate_rest" -> Some Migrate_rest
  | _ ->
      (match String.index_opt s ':' with
      | Some i -> (
          let head = String.sub s 0 i in
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some g when g >= 0 && g < Model.group_count m ->
              if head = "migrate" then Some (Migrate g)
              else if head = "promote" then Some (Promote g)
              else None
          | _ -> None)
      | _ -> None)

let pp_event m ppf = function
  | Link_ok -> Format.pp_print_string ppf "link_ok"
  | Link_fail -> Format.pp_print_string ppf "link_fail"
  | Cooloff -> Format.pp_print_string ppf "cooloff"
  | Migrate g ->
      Format.fprintf ppf "migrate(%s)" m.Model.m_groups.(g).Model.g_subject
  | Migrate_rest -> Format.pp_print_string ppf "migrate_rest"
  | Promote g ->
      Format.fprintf ppf "promote(%s)" m.Model.m_groups.(g).Model.g_subject

let pp_trace m ppf trace =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
    (pp_event m) ppf trace

type state = {
  st_rung : int;
  st_snap : Health.snapshot;
  st_locs : Constraints.location array; (* per group *)
  st_hosts : int array; (* per group; pool host, 0 on the client side *)
}

type violation = {
  vl_code : string;
  vl_severity : Lint.severity;
  vl_subject : string;
  vl_message : string;
  vl_trace : event list;
}

type stats = {
  sr_states : int;
  sr_transitions : int;
  sr_dedup_hits : int;
  sr_depth : int;
  sr_complete : bool;
  sr_rungs_reached : bool array;
}

type result = { r_stats : stats; r_violations : violation list }

(* --- State mechanics -------------------------------------------------- *)

let canon (snap : Health.snapshot) =
  {
    snap with
    Health.sn_opened_at_us = 0.;
    sn_consecutive_failures =
      (match snap.Health.sn_state with
      | Health.Closed -> snap.Health.sn_consecutive_failures
      | _ -> 0);
    sn_probe_successes =
      (match snap.Health.sn_state with
      | Health.Half_open -> snap.Health.sn_probe_successes
      | _ -> 0);
  }

let host_target m rung g =
  if g.Model.g_targets.(rung) = Constraints.Server then Model.target_host m rung g else 0

let init m =
  {
    st_rung = 0;
    st_snap = canon (Health.initial_snapshot m.Model.m_policy);
    st_locs = Array.map (fun g -> g.Model.g_targets.(0)) m.Model.m_groups;
    st_hosts = Array.map (fun g -> host_target m 0 g) m.Model.m_groups;
  }

let key m st =
  let b = Buffer.create 32 in
  Buffer.add_string b (string_of_int st.st_rung);
  Buffer.add_char b '|';
  Buffer.add_string b (Health.state_name st.st_snap.Health.sn_state);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int st.st_snap.Health.sn_consecutive_failures);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int st.st_snap.Health.sn_probe_successes);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int (Model.cooloff_index m st.st_snap.Health.sn_cooloff_us));
  Buffer.add_char b '|';
  Array.iter
    (fun loc ->
      Buffer.add_char b (match loc with Constraints.Client -> 'c' | Constraints.Server -> 's'))
    st.st_locs;
  Buffer.add_char b '|';
  Array.iter (fun h -> Buffer.add_char b (Char.chr (Char.code '0' + h))) st.st_hosts;
  Buffer.contents b

(* Client/server separation drives the link breaker; for the I1
   crossing check a pair is also separated when both endpoints are
   server-side but on different pool hosts — an inter-host call
   marshals exactly like a client-server one. *)
let separated_loc st (e : Model.edge) = st.st_locs.(e.Model.e_a) <> st.st_locs.(e.Model.e_b)

let separated st (e : Model.edge) =
  separated_loc st e
  || st.st_locs.(e.Model.e_a) = Constraints.Server
     && st.st_hosts.(e.Model.e_a) <> st.st_hosts.(e.Model.e_b)

(* The breaker only sees outcomes of calls that actually cross the
   machine boundary on a marshalable interface: non-remotable calls
   fault before reaching the link (that fault IS the I1 violation,
   caught as a state invariant).  Host splits do not feed it — each
   pool host has its own breaker in the RTE, and modeling the one
   shared abstraction on client-server traffic keeps the breaker
   dynamics identical to the two-host model's. *)
let link_active m st =
  Array.exists (fun e -> e.Model.e_remotable && separated_loc st e) m.Model.m_edges

let off_target m st g =
  let grp = m.Model.m_groups.(g) in
  grp.Model.g_ladder_safe
  && (st.st_locs.(g) <> grp.Model.g_targets.(st.st_rung)
     || st.st_hosts.(g) <> host_target m st.st_rung grp)

let enabled m st =
  let migrations =
    let risky = ref [] and rest = ref false in
    Array.iter
      (fun grp ->
        if off_target m st grp.Model.g_id then
          if Model.risky grp then risky := Migrate grp.Model.g_id :: !risky
          else rest := true)
      m.Model.m_groups;
    List.rev !risky @ if !rest then [ Migrate_rest ] else []
  in
  (* Replica promotion: a host loss moves a shard to the next host in
     ring order.  Only risky groups are interleaved — promoting a
     truth-safe group preserves every invariant (it has no
     non-remotable incidence, CG009 needs a truth-unsafe subject, and
     hosts feed neither the breaker nor any other group's
     enabledness), so those interleavings are collapsed away exactly
     like safe migrations. *)
  let promotions =
    if Model.pool_size m st.st_rung <= 1 then []
    else
      Array.to_list m.Model.m_groups
      |> List.filter_map (fun grp ->
             if
               Model.risky grp
               && st.st_locs.(grp.Model.g_id) = Constraints.Server
               && not (off_target m st grp.Model.g_id)
             then Some (Promote grp.Model.g_id)
             else None)
  in
  let breaker =
    match st.st_snap.Health.sn_state with
    | Health.Open -> [ Cooloff ]
    | Health.Closed | Health.Half_open ->
        if link_active m st then [ Link_ok; Link_fail ] else []
  in
  breaker @ migrations @ promotions

(* Mirror of [Rte.resil_on_transition]'s ladder moves. *)
let rung_after m rung = function
  | Some { Health.tr_to = Health.Open; _ } -> min (rung + 1) (Model.rung_count m - 1)
  | Some { Health.tr_to = Health.Closed; _ } -> 0
  | _ -> rung

(* Apply one event.  Returns the successor plus the I3/I4 violations the
   step itself manifests (I1 is a property of the arrival state, checked
   separately by [state_violations]). *)
let apply m st ev =
  match ev with
  | Link_ok | Link_fail ->
      let input = match ev with Link_ok -> Health.Success | _ -> Health.Failure in
      let snap, tr = Health.transition m.Model.m_policy st.st_snap ~at_us:0. input in
      ({ st with st_rung = rung_after m st.st_rung tr; st_snap = canon snap }, [])
  | Cooloff -> (
      let at_us = st.st_snap.Health.sn_opened_at_us +. st.st_snap.Health.sn_cooloff_us in
      let snap, tr = Health.transition m.Model.m_policy st.st_snap ~at_us Health.Observe in
      match tr with
      | Some { Health.tr_to = Health.Half_open; _ } -> ({ st with st_snap = canon snap }, [])
      | _ ->
          (* I3: an open breaker must admit a half-open probe at cooloff
             expiry.  Unreachable with the shared transition function —
             kept as the explicit deadlock check. *)
          ( st,
            [
              ( "CG010",
                Lint.Error,
                m.Model.m_rung_names.(st.st_rung),
                Printf.sprintf
                  "open breaker on rung %d (%s) admits no half-open probe at cooloff expiry"
                  st.st_rung m.Model.m_rung_names.(st.st_rung) );
            ] ))
  | Migrate g ->
      let grp = m.Model.m_groups.(g) in
      let locs = Array.copy st.st_locs and hosts = Array.copy st.st_hosts in
      locs.(g) <- grp.Model.g_targets.(st.st_rung);
      hosts.(g) <- host_target m st.st_rung grp;
      let viols =
        if grp.Model.g_truth_safe then []
        else
          [
            ( "CG009",
              Lint.Error,
              grp.Model.g_subject,
              Printf.sprintf
                "ladder table migrates %s live on rung %d (%s), but the static facts mark it unsafe"
                grp.Model.g_subject st.st_rung m.Model.m_rung_names.(st.st_rung) );
          ]
      in
      ({ st with st_locs = locs; st_hosts = hosts }, viols)
  | Migrate_rest ->
      let locs = Array.copy st.st_locs and hosts = Array.copy st.st_hosts in
      Array.iter
        (fun grp ->
          if (not (Model.risky grp)) && off_target m st grp.Model.g_id then begin
            locs.(grp.Model.g_id) <- grp.Model.g_targets.(st.st_rung);
            hosts.(grp.Model.g_id) <- host_target m st.st_rung grp
          end)
        m.Model.m_groups;
      ({ st with st_locs = locs; st_hosts = hosts }, [])
  | Promote g ->
      let grp = m.Model.m_groups.(g) in
      let hosts = Array.copy st.st_hosts in
      hosts.(g) <- (st.st_hosts.(g) + 1) mod Model.pool_size m st.st_rung;
      (* Only risky groups are ever promoted (see [enabled]), so the
         step always manifests I4: the RTE would be moving a shard the
         static facts say must not move between hosts live. *)
      let viols =
        [
          ( "CG009",
            Lint.Error,
            grp.Model.g_subject,
            Printf.sprintf
              "ladder table promotes %s between pool hosts on rung %d (%s), but the static \
               facts mark it unsafe"
              grp.Model.g_subject st.st_rung m.Model.m_rung_names.(st.st_rung) );
        ]
      in
      ({ st with st_hosts = hosts }, viols)

(* I1: no reachable placement — transient mid-migration ones included —
   separates a non-remotable pair. *)
let state_violations m st =
  Array.to_list m.Model.m_edges
  |> List.filter_map (fun e ->
         if e.Model.e_non_remotable && separated st e then
           let a = m.Model.m_groups.(e.Model.e_a).Model.g_subject
           and b = m.Model.m_groups.(e.Model.e_b).Model.g_subject in
           let message =
             if separated_loc st e then
               Printf.sprintf
                 "reachable placement separates %s and %s across non-remotable %s (rung %d, %s)"
                 a b e.Model.e_iface st.st_rung m.Model.m_rung_names.(st.st_rung)
             else
               Printf.sprintf
                 "reachable placement splits %s and %s across pool hosts %d/%d on \
                  non-remotable %s (rung %d, %s)"
                 a b
                 st.st_hosts.(e.Model.e_a)
                 st.st_hosts.(e.Model.e_b)
                 e.Model.e_iface st.st_rung m.Model.m_rung_names.(st.st_rung)
           in
           Some ("CG008", Lint.Error, e.Model.e_iface, message)
         else None)

(* --- The explorer ----------------------------------------------------- *)

type subtree = {
  su_keys : string list;
  su_transitions : int;
  su_dedup_hits : int;
  su_depth : int;
  su_complete : bool;
  su_rungs : bool array;
  su_violations : (string * violation) list; (* keyed by code\x00subject *)
}

let viol_key code subject = code ^ "\x00" ^ subject

let record_violation tbl trace (code, severity, subject, message) =
  let k = viol_key code subject in
  if not (Hashtbl.mem tbl k) then
    Hashtbl.add tbl k
      {
        vl_code = code;
        vl_severity = severity;
        vl_subject = subject;
        vl_message = message;
        vl_trace = List.rev trace;
      }

(* Bounded BFS from one root; [visited] is pre-seeded with the initial
   state's key so subtrees never re-expand it (any state reachable only
   through init belongs to a sibling subtree).  Traces are kept reversed
   on the queue. *)
let explore_subtree m ~budget ~init_key (root_ev, root_st, root_viols) =
  let visited = Hashtbl.create 256 in
  Hashtbl.replace visited init_key ();
  let viols = Hashtbl.create 8 in
  let transitions = ref 1 and dedup = ref 0 and max_depth = ref 0 in
  let rungs = Array.make (Array.length m.Model.m_rung_names) false in
  let truncated = ref false in
  let q = Queue.create () in
  let admit st trace depth =
    let k = key m st in
    if Hashtbl.mem visited k then incr dedup
    else begin
      Hashtbl.replace visited k ();
      rungs.(st.st_rung) <- true;
      if depth > !max_depth then max_depth := depth;
      List.iter (record_violation viols trace) (state_violations m st);
      if depth < budget then Queue.add (st, trace, depth) q else truncated := true
    end
  in
  List.iter (record_violation viols [ root_ev ]) root_viols;
  admit root_st [ root_ev ] 1;
  while not (Queue.is_empty q) do
    let st, trace, depth = Queue.pop q in
    List.iter
      (fun ev ->
        incr transitions;
        let st', step_viols = apply m st ev in
        let trace' = ev :: trace in
        List.iter (record_violation viols trace') step_viols;
        admit st' trace' (depth + 1))
      (enabled m st)
  done;
  {
    su_keys = Hashtbl.fold (fun k () acc -> k :: acc) visited [];
    su_transitions = !transitions;
    su_dedup_hits = !dedup;
    su_depth = !max_depth;
    su_complete = not !truncated;
    su_rungs = rungs;
    su_violations = Hashtbl.fold (fun k v acc -> (k, v) :: acc) viols [];
  }

let trace_lt m a b =
  let la = List.length a and lb = List.length b in
  if la <> lb then la < lb
  else String.concat ";" (List.map (event_id m) a) < String.concat ";" (List.map (event_id m) b)

let default_depth = 40

let run ?pool ?(depth = default_depth) m =
  if depth < 1 then invalid_arg "Verify.Explore.run: depth < 1";
  let st0 = init m in
  let init_key = key m st0 in
  (* Exploration always splits on the initial state's successors and
     merges deterministically, so the result is identical whether the
     subtrees run sequentially or on a pool ([Parallel.map] preserves
     input order). *)
  let roots =
    List.map
      (fun ev ->
        let st', viols = apply m st0 ev in
        (ev, st', viols))
      (enabled m st0)
  in
  let subtrees =
    let f = explore_subtree m ~budget:depth ~init_key in
    match pool with
    | None -> List.map f roots
    | Some pool -> Parallel.map_list pool ~f roots
  in
  let keys = Hashtbl.create 256 in
  Hashtbl.replace keys init_key ();
  List.iter (fun s -> List.iter (fun k -> Hashtbl.replace keys k ()) s.su_keys) subtrees;
  let rungs = Array.make (Model.rung_count m) false in
  rungs.(st0.st_rung) <- true;
  List.iter
    (fun s -> Array.iteri (fun i b -> if b then rungs.(i) <- true) s.su_rungs)
    subtrees;
  let viols = Hashtbl.create 8 in
  List.iter (record_violation viols []) (state_violations m st0);
  List.iter
    (fun s ->
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt viols k with
          | Some cur when not (trace_lt m v.vl_trace cur.vl_trace) -> ()
          | _ -> Hashtbl.replace viols k v)
        s.su_violations)
    subtrees;
  let violations =
    Hashtbl.fold (fun _ v acc -> v :: acc) viols []
    |> List.sort (fun a b -> compare (a.vl_code, a.vl_subject) (b.vl_code, b.vl_subject))
  in
  {
    r_stats =
      {
        sr_states = Hashtbl.length keys;
        sr_transitions = List.fold_left (fun a s -> a + s.su_transitions) 0 subtrees;
        sr_dedup_hits = List.fold_left (fun a s -> a + s.su_dedup_hits) 0 subtrees;
        sr_depth = List.fold_left (fun a s -> max a s.su_depth) 0 subtrees;
        sr_complete = List.for_all (fun s -> s.su_complete) subtrees;
        sr_rungs_reached = rungs;
      };
    r_violations = violations;
  }

(* --- Diagnostics ------------------------------------------------------ *)

let diagnostics m result =
  let of_violation v =
    let trace =
      match v.vl_trace with
      | [] -> "at the initial placement"
      | t -> Format.asprintf "via %a" (pp_trace m) t
    in
    Lint.diag v.vl_code v.vl_severity v.vl_subject (v.vl_message ^ " [" ^ trace ^ "]")
  in
  let unreached =
    let note =
      if result.r_stats.sr_complete then ""
      else " (exploration truncated at the depth bound)"
    in
    Array.to_list
      (Array.mapi
         (fun r reached ->
           if reached then None
           else
             Some
               (Lint.diag "CG010" Lint.Warning m.Model.m_rung_names.(r)
                  (Printf.sprintf "rung %d (%s) is never installed by any explored interleaving%s"
                     r m.Model.m_rung_names.(r) note)))
         result.r_stats.sr_rungs_reached)
    |> List.filter_map Fun.id
  in
  Lint.order (List.map of_violation result.r_violations @ unreached)
