(** Explicit-state exploration of failover interleavings.

    BFS with hashed-state dedup over the finite model built by
    {!Model}, checking the invariant catalogue from the design doc:

    - I1 / CG008 — no reachable placement (transient mid-migration ones
      included) separates a non-remotable pair;
    - I3 / CG010 (error) — every open breaker admits a half-open probe
      at cooloff expiry;
    - I4 / CG009 — no reachable migration moves a classification the
      static facts mark unsafe;
    - CG010 (warning) — every ladder rung is installed by some explored
      interleaving.

    (I2 — location pins on non-terminal rungs — is a per-rung static
    property and is checked by the [coign verify] driver through
    {!Analysis.validate}, not by the explorer.)

    Breaker steps reuse the pure {!Coign_netsim.Health.transition}, so
    the explorer and the RTE share one state machine by construction.
    Counterexamples are replayable event traces ({!Replay}). *)

open Coign_core

type event =
  | Link_ok  (** a successful remote call outcome on the link *)
  | Link_fail  (** a failed one *)
  | Cooloff  (** the sim clock passes the open breaker's cooloff *)
  | Migrate of int  (** one risky group migrates to its rung target *)
  | Migrate_rest  (** all pending safe groups migrate atomically *)
  | Promote of int
      (** one risky group is promoted to the next pool host in ring
          order — a host loss taking its shard's replica.  Only
          enabled on rungs whose pool size exceeds 1; promoting safe
          groups is collapsed away like safe migrations *)

val event_id : Model.t -> event -> string
(** Stable machine-readable id ([link_fail], [migrate:3], ...). *)

val event_of_id : Model.t -> string -> event option
(** Inverse of {!event_id}; [None] on unknown ids or out-of-range
    group numbers. *)

val pp_event : Model.t -> Format.formatter -> event -> unit
(** Human form; [Migrate] shows the group's subject class. *)

val pp_trace : Model.t -> Format.formatter -> event list -> unit
(** [ev -> ev -> ...]. *)

type state = {
  st_rung : int;
  st_snap : Coign_netsim.Health.snapshot;  (** canonical, see [canon] *)
  st_locs : Constraints.location array;  (** per group *)
  st_hosts : int array;
      (** per group: pool host, 0 on the client side.  Inert (all 0,
          no promotions enabled) when every rung's pool size is 1, so
          the classic two-host state space is unchanged *)
}

val init : Model.t -> state
(** Rung 0, closed breaker, every group at its primary target (and
    target host). *)

val canon : Coign_netsim.Health.snapshot -> Coign_netsim.Health.snapshot
(** Canonicalize a snapshot onto the finite grid: opened-at pinned to 0,
    consecutive failures kept only in [Closed], probe successes only in
    [Half_open].  Exact (bisimilar) — each field is unread before its
    next reset outside the kept state; see the implementation header. *)

val enabled : Model.t -> state -> event list
(** Events enabled in a state, in deterministic order.  Link events
    need an admitting breaker and remotable separated traffic;
    [Cooloff] needs an open breaker; migrations need a ladder-safe
    group away from its current rung target. *)

val apply : Model.t -> state -> event -> state * (string * Lint.severity * string * string) list
(** Successor state plus the (code, severity, subject, message)
    violations the step itself manifests (I3, I4).  I1 is a property of
    the arrival state — see {!run}. *)

type violation = {
  vl_code : string;
  vl_severity : Lint.severity;
  vl_subject : string;
  vl_message : string;
  vl_trace : event list;  (** from the initial state; replayable *)
}

type stats = {
  sr_states : int;  (** distinct states reached (initial one included) *)
  sr_transitions : int;  (** event applications performed *)
  sr_dedup_hits : int;  (** applications that landed on a known state *)
  sr_depth : int;  (** deepest BFS layer reached *)
  sr_complete : bool;  (** no frontier was cut off by the depth bound *)
  sr_rungs_reached : bool array;  (** per rung: some state installed it *)
}

type result = { r_stats : stats; r_violations : violation list }

val default_depth : int

val run : ?pool:Coign_util.Parallel.t -> ?depth:int -> Model.t -> result
(** Explore to [depth] (default {!default_depth}).  Exploration always
    splits on the initial state's successor subtrees and merges
    deterministically, so the result is bit-identical with or without a
    [pool] and for any worker count.  Violations are deduplicated per
    (code, subject), keeping the shortest (then lexicographically
    first) counterexample trace.  Raises [Invalid_argument] when
    [depth < 1]. *)

val diagnostics : Model.t -> result -> Lint.diagnostic list
(** The result as ordered lint diagnostics: one per violation (trace
    appended to the message) plus CG010 warnings for rungs never
    installed. *)
