(* Replay a counterexample trace through the real runtime machinery.

   The explorer works on canonicalized abstractions; replay drives the
   genuine articles — a mutable [Health.t] breaker advanced on a real
   virtual clock, and a [Factory] whose recorded instances stand in for
   the groups, moved under exactly the ladder-table gating
   [Rte.switch_rung] applies.  A trace is confirmed when the violations
   it was reported for manifest here too: a separated non-remotable
   pair read back from [Factory.machine_of] is precisely the condition
   under which the RTE's marshaling layer raises [E_cannot_marshal]. *)

open Coign_core
module Health = Coign_netsim.Health

type outcome = { ro_codes : string list; ro_invalid : string option }

let confirms outcome code = List.mem code outcome.ro_codes

(* One factory instance per group, numbered from 1 (0 is main). *)
let inst_of_group g = g + 1

let run m trace =
  let rung0 = Array.map (fun g -> g.Model.g_targets.(0)) m.Model.m_groups in
  let factory = Factory.create Factory.All_client in
  Array.iteri (fun g loc -> Factory.record_instance factory ~inst:(inst_of_group g) loc) rung0;
  let breaker = Health.create ~policy:m.Model.m_policy () in
  let rung = ref 0 and now = ref 0. and codes = ref [] and invalid = ref None in
  let bottom = Model.rung_count m - 1 in
  let note code = if not (List.mem code !codes) then codes := !codes @ [ code ] in
  let fail msg = if !invalid = None then invalid := Some msg in
  let check_crossings () =
    Array.iter
      (fun e ->
        if
          e.Model.e_non_remotable
          && Factory.machine_of factory (inst_of_group e.Model.e_a)
             <> Factory.machine_of factory (inst_of_group e.Model.e_b)
        then note "CG008")
      m.Model.m_edges
  in
  let on_transition = function
    | Some { Health.tr_to = Health.Open; _ } -> rung := min (!rung + 1) bottom
    | Some { Health.tr_to = Health.Closed; _ } -> rung := 0
    | _ -> ()
  in
  let migrate g =
    let grp = m.Model.m_groups.(g) in
    if not grp.Model.g_ladder_safe then
      fail (Printf.sprintf "trace migrates ladder-unsafe group %s" grp.Model.g_subject)
    else begin
      Factory.record_instance factory ~inst:(inst_of_group g) grp.Model.g_targets.(!rung);
      if not grp.Model.g_truth_safe then note "CG009"
    end
  in
  let step ev =
    (match ev with
    | Explore.Link_ok | Explore.Link_fail ->
        now := !now +. 1.;
        if not (Health.allows breaker ~now_us:!now) then
          fail "trace issues a call the open breaker rejects"
        else
          on_transition
            (if ev = Explore.Link_ok then Health.record_success breaker ~now_us:!now
             else Health.record_failure breaker ~now_us:!now)
    | Explore.Cooloff -> (
        now := Float.max !now (Health.cooloff_expires_at breaker);
        match Health.observe breaker ~now_us:!now with
        | Some { Health.tr_to = Health.Half_open; _ } -> ()
        | _ -> note "CG010")
    | Explore.Migrate g -> migrate g
    | Explore.Promote g ->
        (* The factory abstraction has one server machine, so a
           promotion cannot move the instance anywhere observable —
           replay confirms the gating instead: the ladder table must
           claim the group safe for the RTE to promote it at all, and
           a truth-unsafe subject is the I4 violation the trace was
           reported for. *)
        let grp = m.Model.m_groups.(g) in
        if not grp.Model.g_ladder_safe then
          fail (Printf.sprintf "trace promotes ladder-unsafe group %s" grp.Model.g_subject)
        else if not grp.Model.g_truth_safe then note "CG009"
    | Explore.Migrate_rest ->
        Array.iter
          (fun grp ->
            if
              (not (Model.risky grp))
              && grp.Model.g_ladder_safe
              && Factory.machine_of factory (inst_of_group grp.Model.g_id)
                 <> grp.Model.g_targets.(!rung)
            then migrate grp.Model.g_id)
          m.Model.m_groups);
    check_crossings ()
  in
  check_crossings ();
  List.iter (fun ev -> if !invalid = None then step ev) trace;
  { ro_codes = !codes; ro_invalid = !invalid }
