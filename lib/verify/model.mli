(** The finite component-interaction model checked by {!Explore}.

    {!build} compiles an image's profiled ICC facts, its {!Fallback}
    ladder + migration-safety table, and a {!Coign_netsim.Health}
    breaker policy into a small automaton alphabet: symmetry-reduced
    {e groups} of classifications, the inter-group communication
    {e edges} that drive and endanger them, and the finite cooloff
    escalation chain the breaker can visit.

    The type is transparent so tests can hand-build adversarial models
    (lying safety tables, unreachable rungs) without forging images. *)

open Coign_core

type group = {
  g_id : int;
  g_members : int list;  (** classifications; -1 is the main program *)
  g_subject : string;  (** representative class name, for diagnostics *)
  g_targets : Constraints.location array;  (** placement per rung *)
  g_ladder_safe : bool;  (** what the ladder's table will act on *)
  g_truth_safe : bool;  (** what the static facts actually derive *)
}

type edge = {
  e_a : int;  (** group ids, [e_a < e_b] *)
  e_b : int;
  e_iface : string;  (** sample interface; a non-remotable one if any *)
  e_remotable : bool;
  e_non_remotable : bool;
}

type t = {
  m_groups : group array;
  m_edges : edge array;
  m_rung_names : string array;
  m_policy : Coign_netsim.Health.policy;
  m_cooloffs : float array;  (** escalation chain, base to cap *)
  m_classifications : int;  (** classifications folded in, incl. main *)
  m_pool_sizes : int array;
      (** server pool hosts per rung; all 1 is the classic two-host
          model, and then the explorer's host dimension is inert *)
}

val rung_count : t -> int
val group_count : t -> int

val pool_size : t -> int -> int
(** Pool hosts on a rung. *)

val max_pool_size : int
(** 3 — the bound {!build} enforces on [pool_sizes] so exploration
    stays finite at useful depths. *)

val target_host : t -> int -> group -> int
(** The host a server-side group belongs on under a rung's pool:
    host 0 for ladder-unsafe groups (the RTE pins their shard there,
    and host 0 survives every resize), [g_id mod pool] for the rest —
    the fixed-map-folded-by-modulo rule of the pool ladder. Reads the
    {e ladder's} safety bit, exactly as the RTE does, so a lying table
    shards a truth-unsafe group onto a moving host and the explorer
    surfaces the consequences. *)

val risky : group -> bool
(** Ladder-safe but truth-unsafe: the migrations that can manifest
    I1/I4 violations, interleaved individually by the explorer. *)

val cooloff_chain : Coign_netsim.Health.policy -> float array
(** [c, min(c*mult, cap), ...] to fixpoint — every cooloff value the
    breaker can reach by escalation. *)

val cooloff_index : t -> float -> int
(** Position of a cooloff value in the chain, by float bit equality
    (the verifier steps the real {!Coign_netsim.Health.transition}, so
    escalated values must land exactly on chain entries).  Raises
    [Invalid_argument] if the value is off-chain. *)

val build :
  ?policy:Coign_netsim.Health.policy ->
  ?pool_sizes:int list ->
  classifier:Classifier.t ->
  icc:Icc.t ->
  ladder:Fallback.t ->
  truth:bool array ->
  unit ->
  t
(** Compile the model.  [truth] is the freshly derived
    {!Fallback.migration_safety} table; the ladder's own table is read
    through {!Fallback.migration_safe} so a stale or hand-edited table
    shows up as {!risky} groups.  [pool_sizes] (default all 1) gives
    each rung's server pool size, one entry per rung in [1,
    {!max_pool_size}]; raises [Invalid_argument] on a length or range
    mismatch. *)
