(** Replay counterexample traces through the real runtime machinery.

    The explorer's breaker abstraction is canonicalized; {!run} drives
    a trace through a genuine mutable {!Coign_netsim.Health.t} on a
    real virtual clock and a genuine {!Factory} (one recorded instance
    per model group), applying exactly the ladder-table migration
    gating [Rte.switch_rung] uses.  A reported violation is confirmed
    when it manifests here too — a separated non-remotable pair read
    back from [Factory.machine_of] is the precise condition under which
    the RTE raises [E_cannot_marshal] at marshal time. *)

type outcome = {
  ro_codes : string list;  (** violation codes manifested, in order *)
  ro_invalid : string option;
      (** [Some reason] when the trace is not executable (a call the
          breaker rejects, a migration the ladder table forbids) — the
          explorer never emits such traces *)
}

val confirms : outcome -> string -> bool
(** Whether the replay manifested the given violation code. *)

val run : Model.t -> Explore.event list -> outcome
