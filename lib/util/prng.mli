(** Deterministic pseudo-random number generator (splitmix64).

    Coign's evaluation must be reproducible: scenario drivers, the
    network profiler's statistical sampling, and the execution
    simulator's jitter all draw from explicitly-seeded generators so
    that repeated runs produce identical tables. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same internal state. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed value (Box-Muller). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val split : t -> t
(** A generator statistically independent of the parent; both may be
    used afterwards. *)

val mix64 : int64 -> int64
(** The raw splitmix64 finalizer (avalanche mix) — for building pure
    keyed hashes whose consumers must not share mutable generator
    state (e.g. the fault model's per-message verdicts). *)

val stream : int64 -> int -> int64
(** [stream seed i] is the seed of the [i]-th independent sub-stream
    of [seed]. Unlike {!split} it is a pure function of its inputs:
    deriving stream [i] never advances any generator, so concerns that
    each own a stream of one master seed cannot perturb each other's
    draws. [stream seed 0] intentionally differs from [seed] itself;
    the convention is that the root generator [create seed] is "stream
    -1" and derived concerns use [create (stream seed i)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
