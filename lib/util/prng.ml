type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: the standard avalanche mix. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  assert (bound > 0.);
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let split t = { state = mix (next_int64 t) }

let mix64 = mix

(* Stream derivation is stateless: it never draws from (or even
   constructs) the root generator, so adding a consumer of stream [i]
   cannot perturb the draws of any other stream of the same seed. *)
let stream seed i = mix (Int64.add seed (Int64.mul golden_gamma (Int64.of_int i)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
