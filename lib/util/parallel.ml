(* Work is distributed by an atomic next-index counter: domains grab
   items until the counter passes the batch size. The submitting domain
   participates too, then waits on a condition variable until the
   completed count reaches the batch size. Worker domains distinguish
   successive batches by a generation number so a slow worker can never
   re-run a stale job. *)

type job = {
  j_gen : int;
  j_total : int;
  j_next : int Atomic.t;
  j_completed : int Atomic.t;
  j_run : int -> unit;  (* must not raise; captures its own failures *)
}

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable gen : int;
  mutable stop : bool;
  mutable busy : bool;  (* a batch is in flight; nested maps run inline *)
  mutable workers : unit Domain.t list;
}

let run_job t j =
  let rec go () =
    let i = Atomic.fetch_and_add j.j_next 1 in
    if i < j.j_total then begin
      j.j_run i;
      let completed = 1 + Atomic.fetch_and_add j.j_completed 1 in
      if completed = j.j_total then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end;
      go ()
    end
  in
  go ()

let rec worker_loop t last_gen =
  Mutex.lock t.mutex;
  let rec await () =
    if t.stop then None
    else
      match t.job with
      | Some j when j.j_gen <> last_gen -> Some j
      | _ ->
          Condition.wait t.work_ready t.mutex;
          await ()
  in
  let next = await () in
  Mutex.unlock t.mutex;
  match next with
  | None -> ()
  | Some j ->
      run_job t j;
      worker_loop t j.j_gen

let create ?domains () =
  let count =
    match domains with
    | Some d ->
        if d < 0 then invalid_arg "Parallel.create: negative domain count";
        d
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      gen = 0;
      stop = false;
      busy = false;
      workers = [];
    }
  in
  t.workers <- List.init count (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let worker_count t = List.length t.workers

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map_init t ~init ~f items =
  let total = Array.length items in
  let inline () =
    let state = init () in
    Array.map (fun x -> f state x) items
  in
  if total = 0 then [||]
  else if t.workers = [] then inline ()
  else begin
    Mutex.lock t.mutex;
    if t.busy || t.stop then begin
      (* Nested map from inside a running batch (or after shutdown):
         run on the calling domain rather than deadlock waiting for
         workers that are busy executing us. *)
      Mutex.unlock t.mutex;
      inline ()
    end
    else begin
      t.busy <- true;
      let results = Array.make total None in
      let failure = Atomic.make None in
      (* One state per participating domain, created on first use. *)
      let state_key = Domain.DLS.new_key init in
      let run i =
        if Atomic.get failure = None then
          try results.(i) <- Some (f (Domain.DLS.get state_key) items.(i))
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      in
      t.gen <- t.gen + 1;
      let j =
        {
          j_gen = t.gen;
          j_total = total;
          j_next = Atomic.make 0;
          j_completed = Atomic.make 0;
          j_run = run;
        }
      in
      t.job <- Some j;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      run_job t j;
      Mutex.lock t.mutex;
      while Atomic.get j.j_completed < total do
        Condition.wait t.work_done t.mutex
      done;
      t.job <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.map (function Some v -> v | None -> assert false) results
    end
  end

let map t ~f items = map_init t ~init:(fun () -> ()) ~f:(fun () x -> f x) items

let map_list t ~f items = Array.to_list (map t ~f (Array.of_list items))

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p when not p.stop -> p
  | _ ->
      let p = create () in
      default_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
