(** A minimal JSON value: build, print, parse.

    The observability subsystem (traces, metrics, event serialization)
    needs structured machine-readable output that external tools can
    parse — Chrome's trace viewer, Prometheus-adjacent scrapers, the CI
    smoke checks — without pulling a JSON dependency into the toolchain
    image. This is deliberately the smallest JSON that round-trips the
    values Coign produces: no streaming, no number preservation beyond
    int/float, UTF-8 passed through verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Strings are escaped per RFC 8259 (control
    characters as [\u00XX]); floats print with [%.17g] plus a [".0"]
    suffix when they would otherwise look integral, so a [Float] never
    re-parses as an [Int]. NaN and infinities are not representable in
    JSON and render as [null]. *)

val pp : Format.formatter -> t -> unit
(** [to_string] on a formatter. *)

val escape : string -> string
(** The escaped body of a JSON string literal (no surrounding
    quotes). *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed; trailing
    garbage is an error). Numbers without [.], [e], or [E] that fit in
    an OCaml [int] parse as [Int], everything else as [Float].
    [\uXXXX] escapes decode to UTF-8, surrogate pairs included. *)

val parse_exn : string -> t
(** [parse], raising [Invalid_argument] on malformed input. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for absent fields or non-objects. *)

val equal : t -> t -> bool
