(** A small domain pool for embarrassingly parallel batches.

    OCaml 5 domains are heavyweight (each maps to an OS thread with its
    own minor heap), so spawning one per work item is wasteful. A pool
    spawns its worker domains once and reuses them for every subsequent
    batch; items are handed out by an atomic counter, and results land
    in a pre-sized array indexed by item position, so the output order
    is always the input order no matter which domain ran what.

    Determinism contract: [map] with a pure [f] returns exactly
    [Array.map f items] — same values, same order — whether the pool
    has zero workers (everything runs inline on the caller's domain)
    or many. The experiment driver's parallel paths rely on this to
    stay byte-identical to their sequential counterparts. *)

type t

val create : ?domains:int -> unit -> t
(** Spawn a pool. [domains] is the number of worker domains; it
    defaults to [Domain.recommended_domain_count () - 1] (the caller's
    domain also executes work while it waits, so total parallelism is
    [domains + 1]). [~domains:0] is a valid sequential pool: every
    [map] runs inline. Raises [Invalid_argument] on negative counts. *)

val worker_count : t -> int
(** Worker domains in the pool (not counting the submitting domain). *)

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map t ~f items] applies [f] to every item, in parallel across the
    pool plus the calling domain, and returns the results in input
    order. If any [f] raises, the first exception (by completion time)
    is re-raised in the caller after all domains stop picking up new
    items. Nested calls on the same pool from inside [f] do not
    deadlock: they detect the busy pool and run inline. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map] over lists. *)

val map_init : t -> init:(unit -> 's) -> f:('s -> 'a -> 'b) -> 'a array -> 'b array
(** Like [map], but each participating domain lazily creates one
    private state with [init] and threads it through every item it
    happens to process. Use for per-domain scratch structures (e.g. a
    copied analysis session) that are cheap to share across items but
    unsafe to share across domains. [f] must give the same result
    whichever domain's state it receives. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent. Subsequent [map] calls run
    inline (sequentially). *)

val default : unit -> t
(** A lazily created process-wide pool sized for the machine, joined
    automatically at exit. *)
