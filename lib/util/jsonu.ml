type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  (* Encode one Unicode scalar value as UTF-8. *)
  let add_uchar buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "truncated escape";
          let c = s.[!pos] in
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let u = hex4 () in
              if u >= 0xD800 && u <= 0xDBFF then begin
                (* High surrogate: require the low half. *)
                if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then fail "bad low surrogate";
                  add_uchar buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else fail "lone high surrogate"
              end
              else if u >= 0xDC00 && u <= 0xDFFF then fail "lone low surrogate"
              else add_uchar buf u
          | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg ("Jsonu.parse: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           a b
  | _ -> false
