open Coign_util
open Coign_netsim
open Coign_core

type run = {
  fr_drop_rate : float;
  fr_partition_us : float;
  fr_stats : Adps.exec_stats;
}

type grid = {
  fg_network : Network.t;
  fg_seed : int64;
  fg_runs : run list;
}

let default_drop_rates = [ 0.; 0.01; 0.05; 0.1 ]
let default_partitions_us = [ 0.; 50_000. ]

let run ?pool ?profiler ?(seed = 0x5EEDL) ?(jitter = 0.) ?(retry = Fault.default_retry)
    ?(drop_rates = default_drop_rates) ?(partitions_us = default_partitions_us)
    ?(partition_start_us = 0.) ~image ~registry ~network scenario =
  let cells =
    Array.of_list
      (List.concat_map (fun d -> List.map (fun p -> (d, p)) partitions_us) drop_rates)
  in
  let timed f =
    match profiler with
    | None -> f ()
    | Some p -> Coign_obs.Profiler.time p "faultsim_cell" f
  in
  let eval (d, p) =
    let faults =
      {
        Fault.zero with
        Fault.fs_drop_rate = d;
        fs_partitions_us =
          (if p > 0. then [ (partition_start_us, partition_start_us +. p) ] else []);
      }
    in
    (* Adps.execute decodes the distribution afresh, so every cell gets
       its own classifier state — nothing is shared across domains. *)
    {
      fr_drop_rate = d;
      fr_partition_us = p;
      fr_stats =
        timed (fun () ->
            Adps.execute ~image ~registry ~network ~jitter ~seed ~faults ~retry scenario);
    }
  in
  let runs =
    match pool with
    | None -> Array.map eval cells
    | Some pool -> Parallel.map pool ~f:eval cells
  in
  { fg_network = network; fg_seed = seed; fg_runs = Array.to_list runs }

let pp_text ppf g =
  Format.fprintf ppf "fault grid on %s (seed 0x%LX)@," g.fg_network.Network.net_name g.fg_seed;
  Format.fprintf ppf "%8s  %12s  %6s  %7s  %6s  %9s  %7s  %9s  %9s  %4s@," "drop" "partition ms"
    "calls" "retries" "drops" "fallbacks" "unreach" "comm (s)" "fault (s)" "done";
  Format.fprintf ppf "%s@," (String.make 96 '-');
  List.iter
    (fun r ->
      let s = r.fr_stats in
      Format.fprintf ppf "%8.3f  %12.1f  %6d  %7d  %6d  %9d  %7d  %9.3f  %9.3f  %4s@,"
        r.fr_drop_rate
        (r.fr_partition_us /. 1e3)
        s.Adps.es_remote_calls s.Adps.es_retries s.Adps.es_drops s.Adps.es_fallbacks
        s.Adps.es_unreachable
        (s.Adps.es_comm_us /. 1e6)
        (s.Adps.es_fault_us /. 1e6)
        (if s.Adps.es_completed then "yes" else "cut"))
    g.fg_runs

let to_json g =
  let escape s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let cell r =
    let s = r.fr_stats in
    Printf.sprintf
      "{\"network\": \"%s\", \"seed\": \"0x%LX\", \"drop_rate\": %.17g, \"partition_us\": \
       %.17g, \"remote_calls\": %d, \"retries\": %d, \"drops\": %d, \"spikes\": %d, \
       \"fallbacks\": %d, \"unreachable\": %d, \"comm_us\": %.17g, \"fault_us\": %.17g, \
       \"completed\": %b}"
      (escape g.fg_network.Network.net_name)
      g.fg_seed r.fr_drop_rate r.fr_partition_us s.Adps.es_remote_calls s.Adps.es_retries
      s.Adps.es_drops s.Adps.es_spikes s.Adps.es_fallbacks s.Adps.es_unreachable
      s.Adps.es_comm_us s.Adps.es_fault_us s.Adps.es_completed
  in
  Printf.sprintf "[\n%s\n]\n" (String.concat ",\n" (List.map cell g.fg_runs))
