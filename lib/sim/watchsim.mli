(** Closed-loop evaluation of online re-partitioning (paper §6).

    Coign's offline loop re-profiles and re-cuts between runs; the
    watch closes the loop {e during} a run. This harness stages the
    experiment end to end: profile a declared scenario mix, analyze it
    into a (soon to be stale) distribution, then replay a phased
    schedule whose usage shifts mid-run — three ways:

    - {b stale}: the analyzed distribution, never revisited — what
      shipping the profile-time cut costs once usage moves;
    - {b watched}: the same deployment with {!Coign_core.Rte}'s drift
      watch attached, free to re-cut online;
    - {b oracle}: what a fresh offline analyze would choose given a
      profile of the post-shift usage alone — the convergence target.

    The headline verdict: did the watched run's final placement reach
    the oracle's cut ([w_converged]), and what did the re-cut do to
    steady-state communication time ([w_steady_*])?

    Determinism: everything runs on the virtual clock with one master
    seed; the three evaluations are independent, so a [pool] changes
    wall time, never a bit of the result. *)

type phase_stat = {
  ph_scenarios : string list;   (** scenario ids run in this phase *)
  ph_stale_comm_us : float;     (** comm added during the phase, stale run *)
  ph_watched_comm_us : float;
}

type result = {
  w_app : string;
  w_network : string;
  w_seed : int64;
  w_threshold : float;
  w_check_every : int;
  w_half_life_us : float;
  w_profile_mix : string list;
  w_phase_stats : phase_stat list;
  w_stale : Coign_core.Analysis.distribution;   (** the profile-time cut *)
  w_oracle : Coign_core.Analysis.distribution;  (** post-shift offline cut *)
  w_final_servers : int;    (** server classifications the watch ended on *)
  w_converged : bool;
      (** watched final placement equals the oracle's, classification
          by classification *)
  w_stale_comm_us : float;
  w_watched_comm_us : float;
  w_steady_stale_us : float;    (** final-phase comm under the stale cut *)
  w_steady_watched_us : float;  (** final-phase comm under the watch *)
  w_drift_checks : int;
  w_drift_detections : int;
  w_repartitions : int;
  w_migrations : int;
  w_unchanged_cuts : int;
  w_rejected_cuts : int;
  w_last_similarity : float;
  w_tap_offered : int;     (** observations offered to the sample tap *)
  w_tap_sampled : int;     (** observations the tap passed downstream *)
  w_timeline : Coign_core.Rte.watch_checkpoint list;
}

val run :
  ?pool:Coign_util.Parallel.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  ?threshold:float ->
  ?check_every:int ->
  ?min_dwell_us:float ->
  ?min_window:float ->
  ?half_life_us:float ->
  ?sample_every:int ->
  ?seed:int64 ->
  profile_mix:string list ->
  phases:string list list ->
  image:Coign_image.Binary_image.t ->
  network:Coign_netsim.Network.t ->
  unit ->
  result
(** Stage and run the experiment on an instrumented (profiling-mode)
    image: profile [profile_mix] scenario by scenario, analyze against
    [network]'s exact profile, then replay [phases] in order under the
    stale, watched, and oracle regimes. Defaults are tuned for the
    bundled scenarios: a check every 64 observations, threshold 0.90,
    750 ms half-life and dwell (one to two scenario runs, so the
    window averages over a scenario's internal phases instead of
    chasing them), window mass 16, 1-in-4 tap sampling. Raises
    [Invalid_argument] for an unknown app or scenario, an empty mix,
    or empty phases. *)

val pp_text : Format.formatter -> result -> unit
(** Stable human-readable report (golden-tested). Steady-state
    checkpoints are elided from the timeline; decisions are printed. *)

val to_json : result -> Coign_util.Jsonu.t
(** Machine-readable form of the same numbers ([%.17g] floats via
    {!Coign_util.Jsonu}). *)
