open Coign_idl
open Coign_util
open Coign_netsim
open Coign_com
open Coign_core

type estimate = {
  re_comm_us : float;
  re_remote_calls : int;
  re_remote_bytes : int;
  re_server_instances : int;
  re_violations : (string * string) list;
  re_retries : int;
  re_drops : int;
  re_spikes : int;
  re_fallbacks : int;
  re_unreachable : int;
  re_fault_us : float;
}

let replay ?faults ?(retry = Fault.default_retry) ~events ~placement ~network () =
  let machines : (int, Constraints.location) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace machines Runtime.main_instance Constraints.Client;
  let machine_of inst =
    Option.value ~default:Constraints.Client (Hashtbl.find_opt machines inst)
  in
  let comm = ref 0. and calls = ref 0 and bytes = ref 0 in
  let violations = ref [] in
  let retries = ref 0 and drops = ref 0 and spikes = ref 0 in
  let fallbacks = ref 0 and unreachable = ref 0 and fault_us = ref 0. in
  (* Backoff jitter for retried estimates; its own stream of the fault
     seed, so the verdict hashes stay untouched. Unused when fault-free
     (a call without a model never retries). *)
  let rng =
    Prng.create (match faults with Some m -> Prng.stream (Fault.seed m) 1 | None -> 0L)
  in
  (* Replay knows nothing of compute, so its virtual clock is the
     accumulated communication time — fault windows for trace-driven
     estimates are expressed against that clock. *)
  let attempt ~request ~reply =
    let oc =
      Fault.call ?model:faults ~retry ~rng ~now_us:!comm ~request_bytes:request
        ~reply_bytes:reply
        ~request_us:(fun () -> Network.message_us network ~bytes:request)
        ~reply_us:(fun () -> Network.message_us network ~bytes:reply)
        ()
    in
    comm := !comm +. oc.Fault.oc_time_us;
    retries := !retries + oc.Fault.oc_retries;
    drops := !drops + oc.Fault.oc_drops;
    spikes := !spikes + oc.Fault.oc_spikes;
    fault_us := !fault_us +. oc.Fault.oc_fault_us;
    if oc.Fault.oc_ok then begin
      incr calls;
      bytes := !bytes + request + reply
    end;
    oc.Fault.oc_ok
  in
  List.iter
    (fun event ->
      match event with
      | Event.Component_instantiated { inst; classification; creator; _ } ->
          let creator_machine = machine_of creator in
          let machine =
            (* Follow the factory: profiled classifications go where the
               placement says; unknown ones stay with their creator. *)
            placement classification
          in
          let machine =
            if classification < 0 then creator_machine else machine
          in
          let machine =
            if machine = creator_machine then machine
            else if
              attempt
                ~request:(Marshal_size.scalar_overhead + (2 * 16))
                ~reply:(Marshal_size.scalar_overhead + Marshal_size.objref_size)
            then machine
            else begin
              (* The distributed RTE would degrade this instantiation to
                 the creator's machine; estimate the same placement. *)
              incr fallbacks;
              creator_machine
            end
          in
          Hashtbl.replace machines inst machine
      | Event.Interface_call
          { caller; callee; iface; meth; remotable; request_bytes; reply_bytes; _ } ->
          if String.equal iface "ICoCreateInstance" then
            (* Instantiation requests are charged by the creation event
               above (they only cross when the factory forwards). *)
            ()
          else if machine_of caller <> machine_of callee then
            if remotable then begin
              if not (attempt ~request:request_bytes ~reply:reply_bytes) then
                (* A live run would raise [E_unreachable] here; the
                   estimator counts the abandoned call and keeps
                   replaying. *)
                incr unreachable
            end
            else
              (* Defense in depth: distributions produced by Adps.analyze
                 are already proven free of cross-cut non-remotable edges
                 by the static validator (Analysis.validate), so this only
                 fires for hand-built placements that bypassed it. *)
              violations := (iface, meth) :: !violations
      | Event.Component_destroyed _ | Event.Interface_instantiated _
      | Event.Interface_destroyed _ | Event.Call_retried _ | Event.Instantiation_degraded _
      | Event.Breaker_opened _ | Event.Breaker_closed _ | Event.Failover _ | Event.Failback _
      | Event.Instance_migrated _ | Event.Drift_detected _ | Event.Repartitioned _
      | Event.Replica_promoted _ | Event.Shard_split _ | Event.Pool_resized _
        ->
          ())
    events;
  let server_instances =
    Hashtbl.fold
      (fun inst m acc ->
        if inst <> Runtime.main_instance && m = Constraints.Server then acc + 1 else acc)
      machines 0
  in
  {
    re_comm_us = !comm;
    re_remote_calls = !calls;
    re_remote_bytes = !bytes;
    re_server_instances = server_instances;
    re_violations = List.rev !violations;
    re_retries = !retries;
    re_drops = !drops;
    re_spikes = !spikes;
    re_fallbacks = !fallbacks;
    re_unreachable = !unreachable;
    re_fault_us = !fault_us;
  }

let record_scenario ~registry ~classifier scenario =
  let ctx = Runtime.create_ctx registry in
  let recorder, events = Logger.event_recorder () in
  let rte = Rte.install_profiling ~loggers:[ recorder ] ~classifier ctx in
  scenario ctx;
  Rte.uninstall rte;
  events ()

let what_if ?faults ?retry ~events ~distribution ~network () =
  replay ?faults ?retry ~events ~placement:(Analysis.location_of distribution) ~network ()
