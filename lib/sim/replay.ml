open Coign_idl
open Coign_netsim
open Coign_com
open Coign_core

type estimate = {
  re_comm_us : float;
  re_remote_calls : int;
  re_remote_bytes : int;
  re_server_instances : int;
  re_violations : (string * string) list;
}

let replay ~events ~placement ~network =
  let machines : (int, Constraints.location) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace machines Runtime.main_instance Constraints.Client;
  let machine_of inst =
    Option.value ~default:Constraints.Client (Hashtbl.find_opt machines inst)
  in
  let comm = ref 0. and calls = ref 0 and bytes = ref 0 in
  let violations = ref [] in
  let charge ~request ~reply =
    comm := !comm +. Network.round_trip_us network ~request ~reply;
    incr calls;
    bytes := !bytes + request + reply
  in
  List.iter
    (fun event ->
      match event with
      | Event.Component_instantiated { inst; classification; creator; _ } ->
          let creator_machine = machine_of creator in
          let machine =
            (* Follow the factory: profiled classifications go where the
               placement says; unknown ones stay with their creator. *)
            placement classification
          in
          let machine =
            if classification < 0 then creator_machine else machine
          in
          Hashtbl.replace machines inst machine;
          if machine <> creator_machine then
            charge
              ~request:(Marshal_size.scalar_overhead + (2 * 16))
              ~reply:(Marshal_size.scalar_overhead + Marshal_size.objref_size)
      | Event.Interface_call
          { caller; callee; iface; meth; remotable; request_bytes; reply_bytes; _ } ->
          if String.equal iface "ICoCreateInstance" then
            (* Instantiation requests are charged by the creation event
               above (they only cross when the factory forwards). *)
            ()
          else if machine_of caller <> machine_of callee then
            if remotable then charge ~request:request_bytes ~reply:reply_bytes
            else
              (* Defense in depth: distributions produced by Adps.analyze
                 are already proven free of cross-cut non-remotable edges
                 by the static validator (Analysis.validate), so this only
                 fires for hand-built placements that bypassed it. *)
              violations := (iface, meth) :: !violations
      | Event.Component_destroyed _ | Event.Interface_instantiated _
      | Event.Interface_destroyed _ ->
          ())
    events;
  let server_instances =
    Hashtbl.fold
      (fun inst m acc ->
        if inst <> Runtime.main_instance && m = Constraints.Server then acc + 1 else acc)
      machines 0
  in
  {
    re_comm_us = !comm;
    re_remote_calls = !calls;
    re_remote_bytes = !bytes;
    re_server_instances = server_instances;
    re_violations = List.rev !violations;
  }

let record_scenario ~registry ~classifier scenario =
  let ctx = Runtime.create_ctx registry in
  let recorder, events = Logger.event_recorder () in
  let rte = Rte.install_profiling ~loggers:[ recorder ] ~classifier ctx in
  scenario ctx;
  Rte.uninstall rte;
  events ()

let what_if ~events ~distribution ~network =
  replay ~events ~placement:(Analysis.location_of distribution) ~network
