(** Open-loop traffic simulation over a chosen distribution.

    Coign's evaluation replays one closed-loop scenario and prices its
    communication against an unloaded network — a single user, latency
    independent of load. The ROADMAP's north star is the opposite
    regime: millions of concurrent sessions, where latency is dominated
    by queueing at shared resources. This module drives an open-loop
    arrival process (sessions arrive whether or not earlier ones have
    finished) over the per-scenario communication traces Coign already
    records, layering FIFO queues on the {!Coign_netsim.Network} cost
    model so service time grows with utilization, and reports the
    percentile latency, throughput, and availability figures a capacity
    plan actually needs.

    Model. Each session runs one scenario's remote operations
    sequentially (closed within the session, zero think time). Every
    operation visits two shared FIFO servers in order: the server host
    (its service demand is the protocol-processing share of both
    messages, {!Coign_netsim.Network.host_us} each way) and then the
    link (propagation plus transmission of request and reply,
    {!Coign_netsim.Network.wire_us}). Client-side work is per-session
    and therefore uncontended — each simulated user runs on their own
    machine. With queueing disabled the two demands collapse back into
    the unloaded {!Coign_netsim.Network.message_us} sum, and a
    session's latency equals the {!Replay} communication estimate for
    its scenario bit for bit (a tested identity).

    Determinism. The simulation runs entirely on a virtual clock; all
    randomness derives from per-session {!Coign_util.Prng.stream}
    substreams of one master seed, so results are a pure function of
    (image, network, arrival, seed, sessions) — the worker pool only
    changes how the per-session draws are filled in, never their
    values, so parallel runs are byte-identical to sequential ones. *)

(** {1 Arrival processes} *)

type arrival =
  | Poisson of float  (** memoryless arrivals at a fixed mean rate (sessions/s) *)
  | Bursty of { b_rate : float; b_on_ms : float; b_off_ms : float }
      (** Poisson at [b_rate] during on-windows of [b_on_ms], silence
          for [b_off_ms] between them — the same arrival mass
          compressed into bursts *)
  | Diurnal of { d_peak : float; d_period_s : float }
      (** raised-cosine rate curve between 5% and 100% of [d_peak]
          with the given period — a day compressed to [d_period_s] *)

val arrival_of_string : string -> (arrival, string) result
(** Parse ["poisson:RATE"], ["bursty:RATE,ON_MS,OFF_MS"], or
    ["diurnal:PEAK,PERIOD_S"]; validates positivity. *)

val arrival_to_string : arrival -> string
(** Round-trips through {!arrival_of_string}. *)

val gen_arrivals :
  ?pool:Coign_util.Parallel.t ->
  seed:int64 ->
  sessions:int ->
  classes:int ->
  arrival ->
  float array * int array
(** [(arrivals, class_of)]: nondecreasing arrival timestamps (µs on
    the sim clock, one per session) and each session's scenario-class
    index, uniform in [\[0, classes)]. Draws are a pure function of
    (seed, session index); the pool parallelizes filling them without
    changing a single bit. *)

(** {1 Session classes} *)

type session_class = {
  cl_scenario : string;     (** scenario id this class replays *)
  cl_host_svc : float array;  (** per-op service demand at the server host *)
  cl_link_svc : float array;  (** per-op service demand on the link *)
  cl_comm_us : float;
      (** unloaded end-to-end communication time; equals the {!Replay}
          estimate for the same scenario and placement bit for bit *)
}

val ops_of_events :
  placement:(int -> Coign_core.Constraints.location) ->
  Coign_core.Event.t list ->
  (int * int) list
(** The (request, reply) byte pairs a {!Replay} of the trace under
    [placement] would charge, in trace order: forwarded instantiations
    and remotable cross-machine calls; non-remotable violations charge
    nothing, exactly as in {!Replay.replay}. *)

val class_of_ops :
  network:Coign_netsim.Network.t -> scenario:string -> (int * int) list -> session_class
(** Price an op list against a network model. Exposed so tests can
    build hand-crafted classes with known arithmetic. *)

(** {1 The event loop} *)

type op_trace = {
  ot_session : int;
  ot_op : int;
  ot_ready_us : float;        (** arrival at the host queue *)
  ot_host_start_us : float;
  ot_host_finish_us : float;
  ot_link_start_us : float;
  ot_finish_us : float;       (** departure from the link *)
}

type sim_totals = {
  st_latency_us : float array;  (** per-session end-to-end latency *)
  st_host_busy_us : float;
  st_link_busy_us : float;
  st_last_finish_us : float;
  st_ops : int;
}

val simulate :
  ?sink:(op_trace -> unit) ->
  classes:session_class array ->
  arrivals:float array ->
  class_of:int array ->
  unit ->
  sim_totals
(** The discrete-event core: every operation passes the shared host
    FIFO and then the shared link FIFO. [arrivals] must be
    nondecreasing (as {!gen_arrivals} guarantees). When a new session's
    arrival ties with a queued continuation, the new session is served
    first — a fixed, documented rule so traces are reproducible. Runs
    in O(total ops) with no event heap: both event sources are already
    sorted, and FIFO service keeps them that way. [sink] observes every
    op's timing, for tests and trace export. *)

(** {1 The full run} *)

type class_stat = {
  cs_scenario : string;
  cs_sessions : int;       (** sessions that drew this scenario *)
  cs_ops : int;            (** remote ops per session *)
  cs_comm_us : float;      (** unloaded comm time per session *)
}

type result = {
  r_app : string;
  r_network : string;
  r_arrival : arrival;
  r_seed : int64;
  r_sessions : int;
  r_queueing : bool;
  r_deadline_us : float option;
  r_classes : class_stat list;
  r_total_ops : int;
  r_p50_us : float;
  r_p95_us : float;
  r_p99_us : float;
  r_mean_us : float;
  r_max_us : float;
  r_throughput_per_s : float;   (** sessions completed per second of makespan *)
  r_availability : float;
      (** fraction of sessions within the deadline; 1 when no deadline *)
  r_duration_us : float;        (** first arrival to last finish *)
  r_host_util : float;          (** busy fraction of the server host *)
  r_link_util : float;
}

val run :
  ?pool:Coign_util.Parallel.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  ?queueing:bool ->
  ?deadline_us:float ->
  ?scenarios:string list ->
  sessions:int ->
  arrival:arrival ->
  seed:int64 ->
  image:Coign_image.Binary_image.t ->
  network:Coign_netsim.Network.t ->
  unit ->
  result
(** Drive [sessions] open-loop sessions against the image's analyzed
    distribution. The scenario mix defaults to the app's non-bigone
    scenarios, drawn uniformly per session; [scenarios] restricts it.
    Each scenario is recorded once under a fresh profiling run and
    compiled to per-op service demands, so cost is O(mix) + O(total
    ops), never O(sessions) scenario executions. [queueing:false]
    prices every session at its class's unloaded estimate (the
    identity-gate mode). [metrics] populates [coign_load_*] counters,
    gauges, and latency/comm histograms. Raises [Invalid_argument] for
    non-positive sessions, an unknown app or scenario, or an image
    without a distribution. *)

val pp_text : Format.formatter -> result -> unit
(** Stable human-readable report (golden-tested). *)

val to_json : result -> Coign_util.Jsonu.t
(** Machine-readable form of the same numbers ([%.17g] floats via
    {!Coign_util.Jsonu}). *)
