open Coign_com
open Coign_core
open Coign_apps

type report = {
  bare_s : float;
  profiling_s : float;
  distributed_s : float;
  app_compute_s : float;
  intercepted_calls : int;
  profiling_us_per_call : float;
  distributed_us_per_call : float;
  profiling_overhead : float;
  distributed_overhead : float;
}

let time_best repeats f =
  let best = ref infinity and result = ref None in
  for _ = 1 to max 1 repeats do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (!best, Option.get !result)

let measure ?(repeats = 3) (app : App.t) (sc : App.scenario) =
  let bare () =
    let ctx = Runtime.create_ctx app.App.app_registry in
    sc.App.sc_run ctx;
    Runtime.compute_us ctx
  in
  let profiling () =
    let ctx = Runtime.create_ctx app.App.app_registry in
    let rte = Rte.install_profiling ~classifier:(Classifier.create Classifier.Ifcb) ctx in
    sc.App.sc_run ctx;
    Rte.uninstall rte;
    Rte.intercepted_calls rte
  in
  let distributed () =
    let ctx = Runtime.create_ctx app.App.app_registry in
    let rte =
      Rte.install_distributed ~classifier:(Classifier.create Classifier.Ifcb)
        ~config:
          {
            Rte.dc_factory_policy = Factory.All_client;
            dc_network = Coign_netsim.Network.loopback;
            dc_jitter = 0.;
            dc_seed = 1L;
            dc_faults = None;
            dc_retry = Coign_netsim.Fault.default_retry;
            dc_resilience = None;
            dc_fleet = None;
            dc_watch = None;
          }
        ctx
    in
    sc.App.sc_run ctx;
    Rte.uninstall rte;
    Rte.intercepted_calls rte
  in
  let bare_s, compute_us = time_best repeats bare in
  let profiling_s, calls = time_best repeats profiling in
  let distributed_s, _ = time_best repeats distributed in
  let app_compute_s = compute_us /. 1e6 in
  let modeled = bare_s +. app_compute_s in
  let per_call total = if calls = 0 then 0. else Float.max 0. (total -. bare_s) /. float_of_int calls *. 1e6 in
  {
    bare_s;
    profiling_s;
    distributed_s;
    app_compute_s;
    intercepted_calls = calls;
    profiling_us_per_call = per_call profiling_s;
    distributed_us_per_call = per_call distributed_s;
    profiling_overhead = (if modeled > 0. then Float.max 0. (profiling_s -. bare_s) /. modeled else 0.);
    distributed_overhead =
      (if modeled > 0. then Float.max 0. (distributed_s -. bare_s) /. modeled else 0.);
  }
