(** Fleet-availability grid: replicated server pool vs. two-host ladder.

    For each (pool size × fault regime) point, runs the scenario twice
    under the image's stored distribution — once with PR 5's two-host
    resilience ladder (the baseline) and once with a replicated pool
    ({!Coign_core.Rte.fleet_config}) of that size — and tabulates
    availability, served-remote ratio and the pool's promotion /
    split / resize activity side by side.

    Two ratios are reported against a fault-free run. {e Availability}
    is the fraction of its intercepted calls that executed — under a
    single-host crash both paths complete (the ladder fails over to
    all-client, the pool promotes replicas), so it ties at 1.
    {e Served} is the fraction of its {e remote} calls that stayed
    remote: the ladder's all-client rung stops serving remotely while
    the pool keeps the surviving hosts in the loop, so this is the
    ratio the fleet must strictly win under crash regimes.

    Regimes: [Clean] (no faults), [Crash] (one host's link partitions
    for the fault window — applied to host 0 for pools > 1 and as the
    global partition for a pool of one, so the pool-1 row doubles as
    the identity check against the baseline), [Partition] (the global
    network partitions for the window — every host's breaker trips,
    and what distinguishes the paths is how they climb back out).

    Determinism mirrors {!Resilsim}: every cell is seeded from the
    same master seed (per-host fault streams are derived, never
    shared), ladders are immutable and computed once, and cells are
    independent — a [pool] changes wall time, never results. *)

type regime = Clean | Crash | Partition

val regime_name : regime -> string

type cell = {
  fr_pool : int;
  fr_regime : regime;
  fr_baseline : Coign_core.Adps.exec_stats;  (** two-host ladder *)
  fr_fleet : Coign_core.Adps.exec_stats;     (** replicated pool *)
  fr_fleet_stats : Coign_core.Rte.fleet_stats;
  fr_identical : bool option;
      (** pool-1 rows: whether the fleet run's stats equal the
          baseline's, field for field — the install-time identity gate
          made them the same configuration, so anything but [Some
          true] is a bug. [None] for wider pools *)
}

type grid = {
  fg_network : Coign_netsim.Network.t;
  fg_seed : int64;
  fg_clean_calls : int;   (** intercepted calls of the fault-free run *)
  fg_clean_remote : int;  (** remote calls of the fault-free run *)
  fg_replicas : int;
  fg_cells : cell list;   (** row-major: pool size outer, regime inner *)
}

val default_pools : int list
(** [1; 2; 3] *)

val default_regimes : regime list
(** [Clean; Crash; Partition] *)

val default_fault_window_us : float * float
(** [(50_000, 550_000)] — a 500 ms outage starting at 50 ms. *)

val availability : grid -> Coign_core.Adps.exec_stats -> float
(** Intercepted calls as a fraction of the clean run's, capped at 1. *)

val served : grid -> Coign_core.Adps.exec_stats -> float
(** Remote calls as a fraction of the clean run's, capped at 1;
    1 when the clean run made none. *)

val run :
  ?pool:Coign_util.Parallel.t ->
  ?profiler:Coign_obs.Profiler.t ->
  ?seed:int64 ->
  ?jitter:float ->
  ?retry:Coign_netsim.Fault.retry_policy ->
  ?health:Coign_netsim.Health.policy ->
  ?max_probe_rounds:int ->
  ?modes:(string * Coign_netsim.Net_profiler.t) list ->
  ?replicas:int ->
  ?map:Coign_core.Pool.shard_map ->
  ?pools:int list ->
  ?regimes:regime list ->
  ?fault_window_us:float * float ->
  image:Coign_image.Binary_image.t ->
  registry:Coign_com.Runtime.registry ->
  network:Coign_netsim.Network.t ->
  Coign_core.Adps.scenario ->
  grid
(** Execute the grid. The image must hold an accumulated profile: one
    analysis session prices the primary cut, the two-host base ladder
    and one pool ladder per requested pool size (duplicates removed,
    ascending). [health] and [max_probe_rounds] configure both sides'
    breakers identically; [replicas] and [map] shape the pool ladders.
    [profiler] times the analysis under its usual phases and every
    execution under ["fleetsim_cell"]. *)

val pp_text : Format.formatter -> grid -> unit
(** The human-readable table [coign fleet] prints. *)

val to_json : grid -> string
(** The grid as a JSON array, one object per cell with [baseline],
    [fleet] and [pool_stats] sub-objects; floats are printed with
    [%.17g] so equal grids serialize byte-identically. *)
