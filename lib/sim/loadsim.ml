open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps

(* ---------------------------------------------------------------- *)
(* Arrival processes                                                 *)
(* ---------------------------------------------------------------- *)

type arrival =
  | Poisson of float
  | Bursty of { b_rate : float; b_on_ms : float; b_off_ms : float }
  | Diurnal of { d_peak : float; d_period_s : float }

let validate_arrival = function
  | Poisson r ->
      if r <= 0. then Error "poisson rate must be positive" else Ok (Poisson r)
  | Bursty { b_rate; b_on_ms; b_off_ms } ->
      if b_rate <= 0. then Error "bursty rate must be positive"
      else if b_on_ms <= 0. then Error "bursty on-window must be positive"
      else if b_off_ms < 0. then Error "bursty off-window must be non-negative"
      else Ok (Bursty { b_rate; b_on_ms; b_off_ms })
  | Diurnal { d_peak; d_period_s } ->
      if d_peak <= 0. then Error "diurnal peak rate must be positive"
      else if d_period_s <= 0. then Error "diurnal period must be positive"
      else Ok (Diurnal { d_peak; d_period_s })

let arrival_to_string = function
  | Poisson r -> Printf.sprintf "poisson:%g" r
  | Bursty { b_rate; b_on_ms; b_off_ms } ->
      Printf.sprintf "bursty:%g,%g,%g" b_rate b_on_ms b_off_ms
  | Diurnal { d_peak; d_period_s } -> Printf.sprintf "diurnal:%g,%g" d_peak d_period_s

let arrival_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad arrival spec %S (expected poisson:RATE, bursty:RATE,ON_MS,OFF_MS, or \
          diurnal:PEAK,PERIOD_S)"
         s)
  in
  let num x = float_of_string_opt (String.trim x) in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let parts = String.split_on_char ',' rest in
      match (kind, List.map num parts) with
      | "poisson", [ Some r ] -> validate_arrival (Poisson r)
      | "bursty", [ Some r; Some on; Some off ] ->
          validate_arrival (Bursty { b_rate = r; b_on_ms = on; b_off_ms = off })
      | "diurnal", [ Some p; Some per ] ->
          validate_arrival (Diurnal { d_peak = p; d_period_s = per })
      | _ -> fail ())

(* Per-session randomness comes from an independent splitmix stream of
   the master seed, so the draws are a pure function of (seed, index):
   batches can be filled on any domain in any order and still agree
   with a sequential fill bit for bit. Each session draws a unit-mean
   exponential (its share of inter-arrival spacing) and a scenario
   pick, in that fixed order. *)
let session_draws ~seed ~classes s =
  let g = Prng.create (Prng.stream seed s) in
  let e = Prng.exponential g ~mean:1. in
  let c = Prng.int g classes in
  (e, c)

let batch = 16_384

let gen_arrivals ?pool ~seed ~sessions ~classes arrival =
  if sessions <= 0 then invalid_arg "Loadsim.gen_arrivals: sessions must be positive";
  if classes <= 0 then invalid_arg "Loadsim.gen_arrivals: classes must be positive";
  (match validate_arrival arrival with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Loadsim.gen_arrivals: " ^ e));
  let spacing = Array.make sessions 0. in
  let class_of = Array.make sessions 0 in
  let chunks =
    Array.init
      ((sessions + batch - 1) / batch)
      (fun i -> (i * batch, min batch (sessions - (i * batch))))
  in
  let fill (start, len) =
    let e = Array.make len 0. and c = Array.make len 0 in
    for k = 0 to len - 1 do
      let ek, ck = session_draws ~seed ~classes (start + k) in
      e.(k) <- ek;
      c.(k) <- ck
    done;
    (e, c)
  in
  let filled =
    match pool with
    | None -> Array.map fill chunks
    | Some pool -> Parallel.map pool ~f:fill chunks
  in
  Array.iteri
    (fun i (e, c) ->
      let start, len = chunks.(i) in
      Array.blit e 0 spacing start len;
      Array.blit c 0 class_of start len)
    filled;
  (* The exponential draws become timestamps in one sequential prefix
     pass — each process is a monotone transform of the accumulated
     spacing, so timestamps are nondecreasing by construction. *)
  let arrivals = Array.make sessions 0. in
  (match arrival with
  | Poisson rate ->
      let t = ref 0. in
      for s = 0 to sessions - 1 do
        t := !t +. (spacing.(s) *. 1e6 /. rate);
        arrivals.(s) <- !t
      done
  | Bursty { b_rate; b_on_ms; b_off_ms } ->
      (* Poisson on a virtual always-on axis, then mapped through the
         on/off windows: time spent in off-windows is skipped, which
         compresses the same arrival mass into the on-windows. *)
      let on_us = b_on_ms *. 1e3 and off_us = b_off_ms *. 1e3 in
      let v = ref 0. in
      for s = 0 to sessions - 1 do
        v := !v +. (spacing.(s) *. 1e6 /. b_rate);
        let k = Float.of_int (int_of_float (!v /. on_us)) in
        arrivals.(s) <- (k *. (on_us +. off_us)) +. (!v -. (k *. on_us))
      done
  | Diurnal { d_peak; d_period_s } ->
      (* Thinning-free approximation: step the clock by the exponential
         draw scaled by the rate at the previous arrival. The rate
         curve is a raised cosine with a 5% floor so it never stalls. *)
      let period_us = d_period_s *. 1e6 in
      let rate t =
        d_peak
        *. (0.05
           +. (0.95 *. 0.5 *. (1. -. cos (2. *. Float.pi *. (t /. period_us)))))
      in
      let t = ref 0. in
      for s = 0 to sessions - 1 do
        t := !t +. (spacing.(s) *. 1e6 /. rate !t);
        arrivals.(s) <- !t
      done);
  (arrivals, class_of)

(* ---------------------------------------------------------------- *)
(* Session classes: a scenario compiled to per-op service demands     *)
(* ---------------------------------------------------------------- *)

type session_class = {
  cl_scenario : string;
  cl_host_svc : float array;
  cl_link_svc : float array;
  cl_comm_us : float;
}

(* Mirror of Replay.replay's fault-free walk, reduced to the sequence
   of (request, reply) byte pairs it would charge — same machine
   tracking, same instantiation-forwarding sizes, same skip rules — so
   that summing the unloaded per-op costs in trace order reproduces
   [re_comm_us] bit for bit. *)
let ops_of_events ~placement events =
  let machines : (int, Constraints.location) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace machines Coign_com.Runtime.main_instance Constraints.Client;
  let machine_of inst =
    Option.value ~default:Constraints.Client (Hashtbl.find_opt machines inst)
  in
  let ops = ref [] in
  List.iter
    (fun event ->
      match event with
      | Event.Component_instantiated { inst; classification; creator; _ } ->
          let creator_machine = machine_of creator in
          let machine = placement classification in
          let machine = if classification < 0 then creator_machine else machine in
          if machine <> creator_machine then
            ops :=
              ( Coign_idl.Marshal_size.scalar_overhead + (2 * 16),
                Coign_idl.Marshal_size.scalar_overhead + Coign_idl.Marshal_size.objref_size )
              :: !ops;
          Hashtbl.replace machines inst machine
      | Event.Interface_call { caller; callee; iface; remotable; request_bytes; reply_bytes; _ }
        ->
          if String.equal iface "ICoCreateInstance" then ()
          else if machine_of caller <> machine_of callee then
            if remotable then ops := (request_bytes, reply_bytes) :: !ops
            else (* cross-cut non-remotable call: Replay records a
                    violation and charges nothing; so do we. *)
              ()
      | Event.Component_destroyed _ | Event.Interface_instantiated _
      | Event.Interface_destroyed _ | Event.Call_retried _ | Event.Instantiation_degraded _
      | Event.Breaker_opened _ | Event.Breaker_closed _ | Event.Failover _ | Event.Failback _
      | Event.Instance_migrated _ | Event.Drift_detected _ | Event.Repartitioned _
      | Event.Replica_promoted _ | Event.Shard_split _ | Event.Pool_resized _ ->
          ())
    events;
  List.rev !ops

let class_of_ops ~network ~scenario ops =
  let n = List.length ops in
  let host_svc = Array.make n 0. and link_svc = Array.make n 0. in
  let comm = ref 0. in
  List.iteri
    (fun i (request, reply) ->
      (* Both messages of a synchronous call occupy the shared server
         CPU for their protocol processing, then the shared link for
         propagation and transmission. host + link = the unloaded
         round-trip Replay charges. *)
      host_svc.(i) <- Network.host_us network +. Network.host_us network;
      link_svc.(i) <-
        Network.wire_us network ~bytes:request +. Network.wire_us network ~bytes:reply;
      comm :=
        !comm
        +. (Network.message_us network ~bytes:request +. Network.message_us network ~bytes:reply))
    ops;
  { cl_scenario = scenario; cl_host_svc = host_svc; cl_link_svc = link_svc; cl_comm_us = !comm }

(* ---------------------------------------------------------------- *)
(* The event loop                                                    *)
(* ---------------------------------------------------------------- *)

type op_trace = {
  ot_session : int;
  ot_op : int;
  ot_ready_us : float;
  ot_host_start_us : float;
  ot_host_finish_us : float;
  ot_link_start_us : float;
  ot_finish_us : float;
}

type sim_totals = {
  st_latency_us : float array;
  st_host_busy_us : float;
  st_link_busy_us : float;
  st_last_finish_us : float;
  st_ops : int;
}

(* No event heap: host work arrives from exactly two nondecreasing
   streams — the sorted new-session arrivals, and the FIFO ring of
   sessions whose previous op just left the link. Both servers are
   single FIFO queues, so start and finish times are nondecreasing in
   processing order; in particular link finishes are nondecreasing,
   which keeps the pending ring sorted without ever sorting it. Ties
   between the streams go to the new arrival (any fixed rule preserves
   determinism; this one is documented so the hand trace can rely on
   it). The whole simulation is O(total ops) with O(sessions) flat
   storage. *)
let simulate ?sink ~classes ~arrivals ~class_of () =
  let n = Array.length arrivals in
  if Array.length class_of <> n then invalid_arg "Loadsim.simulate: array length mismatch";
  let lat = Array.make n 0. in
  let opix = Array.make n 0 in
  let cap = n + 1 in
  let ring_s = Array.make cap 0 and ring_t = Array.make cap 0. in
  let head = ref 0 and tail = ref 0 in
  let host_free = ref 0. and link_free = ref 0. in
  let host_busy = ref 0. and link_busy = ref 0. in
  let last_finish = ref 0. and ops_done = ref 0 in
  let finish_session s t =
    lat.(s) <- t -. arrivals.(s);
    if t > !last_finish then last_finish := t
  in
  let process s t =
    let c = classes.(class_of.(s)) in
    let j = opix.(s) in
    let hs = if t > !host_free then t else !host_free in
    let hf = hs +. c.cl_host_svc.(j) in
    host_free := hf;
    host_busy := !host_busy +. c.cl_host_svc.(j);
    let ls = if hf > !link_free then hf else !link_free in
    let lf = ls +. c.cl_link_svc.(j) in
    link_free := lf;
    link_busy := !link_busy +. c.cl_link_svc.(j);
    incr ops_done;
    (match sink with
    | Some f ->
        f
          {
            ot_session = s;
            ot_op = j;
            ot_ready_us = t;
            ot_host_start_us = hs;
            ot_host_finish_us = hf;
            ot_link_start_us = ls;
            ot_finish_us = lf;
          }
    | None -> ());
    opix.(s) <- j + 1;
    if opix.(s) < Array.length c.cl_host_svc then begin
      ring_s.(!tail) <- s;
      ring_t.(!tail) <- lf;
      tail := if !tail + 1 = cap then 0 else !tail + 1
    end
    else finish_session s lf
  in
  let next_new = ref 0 in
  while !next_new < n || !head <> !tail do
    if
      !next_new < n
      && (!head = !tail || arrivals.(!next_new) <= ring_t.(!head))
    then begin
      let s = !next_new in
      incr next_new;
      if Array.length classes.(class_of.(s)).cl_host_svc = 0 then
        (* A fully co-located mix: the session never touches the
           network and completes the instant it arrives. *)
        finish_session s arrivals.(s)
      else process s arrivals.(s)
    end
    else begin
      let s = ring_s.(!head) and t = ring_t.(!head) in
      head := if !head + 1 = cap then 0 else !head + 1;
      process s t
    end
  done;
  {
    st_latency_us = lat;
    st_host_busy_us = !host_busy;
    st_link_busy_us = !link_busy;
    st_last_finish_us = !last_finish;
    st_ops = !ops_done;
  }

(* ---------------------------------------------------------------- *)
(* The full run                                                      *)
(* ---------------------------------------------------------------- *)

type class_stat = {
  cs_scenario : string;
  cs_sessions : int;
  cs_ops : int;
  cs_comm_us : float;
}

type result = {
  r_app : string;
  r_network : string;
  r_arrival : arrival;
  r_seed : int64;
  r_sessions : int;
  r_queueing : bool;
  r_deadline_us : float option;
  r_classes : class_stat list;
  r_total_ops : int;
  r_p50_us : float;
  r_p95_us : float;
  r_p99_us : float;
  r_mean_us : float;
  r_max_us : float;
  r_throughput_per_s : float;
  r_availability : float;
  r_duration_us : float;
  r_host_util : float;
  r_link_util : float;
}

(* Same interpolation as Stats.percentile, but over a pre-sorted array
   so a million-session run sorts once, not once per percentile. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let compile_classes ~image ~network ~app scenarios =
  List.map
    (fun (sc : App.scenario) ->
      (* A fresh decode per scenario: profiling-RTE recordings advance
         classifier state, so sharing one decoded classifier across
         scenarios would let one recording perturb the next. *)
      match Adps.load_distribution image with
      | None ->
          invalid_arg
            "Loadsim.run: image holds no distribution (profile and analyze it first)"
      | Some (classifier, dist) ->
          let events =
            Replay.record_scenario ~registry:app.App.app_registry ~classifier sc.App.sc_run
          in
          let ops = ops_of_events ~placement:(Analysis.location_of dist) events in
          class_of_ops ~network ~scenario:sc.App.sc_id ops)
    scenarios

let run ?pool ?metrics ?(queueing = true) ?deadline_us ?scenarios ~sessions ~arrival ~seed
    ~image ~network () =
  if sessions <= 0 then invalid_arg "Loadsim.run: sessions must be positive";
  (match deadline_us with
  | Some d when d <= 0. -> invalid_arg "Loadsim.run: deadline must be positive"
  | _ -> ());
  let app =
    try Suite.find_app image.Coign_image.Binary_image.img_name
    with Not_found ->
      invalid_arg
        ("Loadsim.run: unknown application " ^ image.Coign_image.Binary_image.img_name)
  in
  let mix =
    match scenarios with
    | None -> App.non_bigone app
    | Some [] -> invalid_arg "Loadsim.run: empty scenario mix"
    | Some ids ->
        List.map
          (fun id ->
            try App.scenario app id
            with Not_found -> invalid_arg ("Loadsim.run: unknown scenario " ^ id))
          ids
  in
  let classes = Array.of_list (compile_classes ~image ~network ~app mix) in
  let arrivals, class_of =
    gen_arrivals ?pool ~seed ~sessions ~classes:(Array.length classes) arrival
  in
  let totals =
    if queueing then simulate ~classes ~arrivals ~class_of ()
    else begin
      (* Queueing off: every server is infinitely wide, so a session's
         latency is exactly its class's unloaded Replay estimate. *)
      let lat = Array.make sessions 0. in
      let host = ref 0. and link = ref 0. in
      let last = ref 0. and ops = ref 0 in
      for s = 0 to sessions - 1 do
        let c = classes.(class_of.(s)) in
        lat.(s) <- c.cl_comm_us;
        let f = arrivals.(s) +. c.cl_comm_us in
        if f > !last then last := f;
        ops := !ops + Array.length c.cl_host_svc;
        host := !host +. Array.fold_left ( +. ) 0. c.cl_host_svc;
        link := !link +. Array.fold_left ( +. ) 0. c.cl_link_svc
      done;
      {
        st_latency_us = lat;
        st_host_busy_us = !host;
        st_link_busy_us = !link;
        st_last_finish_us = !last;
        st_ops = !ops;
      }
    end
  in
  let lat = totals.st_latency_us in
  let sorted = Array.copy lat in
  Array.sort Float.compare sorted;
  let duration = totals.st_last_finish_us -. arrivals.(0) in
  let throughput =
    if duration > 0. then float_of_int sessions /. (duration /. 1e6) else 0.
  in
  let availability =
    match deadline_us with
    | None -> 1.
    | Some d ->
        let ok = ref 0 in
        Array.iter (fun l -> if l <= d then incr ok) lat;
        float_of_int !ok /. float_of_int sessions
  in
  let per_class_sessions = Array.make (Array.length classes) 0 in
  Array.iter (fun c -> per_class_sessions.(c) <- per_class_sessions.(c) + 1) class_of;
  let class_stats =
    List.mapi
      (fun i c ->
        {
          cs_scenario = c.cl_scenario;
          cs_sessions = per_class_sessions.(i);
          cs_ops = Array.length c.cl_host_svc;
          cs_comm_us = c.cl_comm_us;
        })
      (Array.to_list classes)
  in
  let result =
    {
      r_app = app.App.app_name;
      r_network = network.Network.net_name;
      r_arrival = arrival;
      r_seed = seed;
      r_sessions = sessions;
      r_queueing = queueing;
      r_deadline_us = deadline_us;
      r_classes = class_stats;
      r_total_ops = totals.st_ops;
      r_p50_us = percentile_sorted sorted 50.;
      r_p95_us = percentile_sorted sorted 95.;
      r_p99_us = percentile_sorted sorted 99.;
      r_mean_us = Stats.mean lat;
      r_max_us = (if sessions = 0 then 0. else sorted.(sessions - 1));
      r_throughput_per_s = throughput;
      r_availability = availability;
      r_duration_us = duration;
      r_host_util = (if duration > 0. then totals.st_host_busy_us /. duration else 0.);
      r_link_util = (if duration > 0. then totals.st_link_busy_us /. duration else 0.);
    }
  in
  (match metrics with
  | None -> ()
  | Some reg ->
      let open Coign_obs in
      Metrics.inc_int
        (Metrics.counter reg ~help:"Sessions driven by the open-loop load simulator"
           "coign_load_sessions_total")
        sessions;
      Metrics.inc_int
        (Metrics.counter reg ~help:"Remote operations simulated under load"
           "coign_load_ops_total")
        totals.st_ops;
      let lat_hist =
        Metrics.histogram reg ~help:"End-to-end session latency under load (us)"
          "coign_load_session_latency_us"
      in
      Array.iter (fun l -> Metrics.observe lat_hist (int_of_float l)) lat;
      let comm_hist =
        Metrics.histogram reg ~help:"Unloaded per-session communication time (us)"
          "coign_load_session_comm_us"
      in
      Array.iter
        (fun c -> Metrics.observe comm_hist (int_of_float classes.(c).cl_comm_us))
        class_of;
      Metrics.set
        (Metrics.gauge reg ~help:"Observed session completion rate" "coign_load_throughput_per_s")
        throughput;
      Metrics.set
        (Metrics.gauge reg ~help:"Fraction of sessions within the deadline"
           "coign_load_availability")
        availability);
  result

(* ---------------------------------------------------------------- *)
(* Rendering                                                         *)
(* ---------------------------------------------------------------- *)

let pp_text ppf r =
  Format.fprintf ppf "open-loop load: %s on %s@," r.r_app r.r_network;
  Format.fprintf ppf "arrival %s, %d sessions, seed 0x%LX, queueing %s@,"
    (arrival_to_string r.r_arrival) r.r_sessions r.r_seed
    (if r.r_queueing then "on" else "off");
  Format.fprintf ppf "%-10s  %9s  %11s  %12s@," "scenario" "sessions" "ops/session"
    "comm (ms)";
  Format.fprintf ppf "%s@," (String.make 48 '-');
  List.iter
    (fun c ->
      Format.fprintf ppf "%-10s  %9d  %11d  %12.3f@," c.cs_scenario c.cs_sessions c.cs_ops
        (c.cs_comm_us /. 1e3))
    r.r_classes;
  Format.fprintf ppf "latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  max %.3f@,"
    (r.r_p50_us /. 1e3) (r.r_p95_us /. 1e3) (r.r_p99_us /. 1e3) (r.r_mean_us /. 1e3)
    (r.r_max_us /. 1e3);
  Format.fprintf ppf "throughput %.2f sessions/s, availability %.4f%s@," r.r_throughput_per_s
    r.r_availability
    (match r.r_deadline_us with
    | None -> ""
    | Some d -> Printf.sprintf " (deadline %.1f ms)" (d /. 1e3));
  Format.fprintf ppf "host util %.3f, link util %.3f, duration %.3f s, %d remote ops@,"
    r.r_host_util r.r_link_util (r.r_duration_us /. 1e6) r.r_total_ops

let to_json r =
  Jsonu.Obj
    [
      ("app", Jsonu.Str r.r_app);
      ("network", Jsonu.Str r.r_network);
      ("arrival", Jsonu.Str (arrival_to_string r.r_arrival));
      ("seed", Jsonu.Str (Printf.sprintf "0x%LX" r.r_seed));
      ("sessions", Jsonu.Int r.r_sessions);
      ("queueing", Jsonu.Bool r.r_queueing);
      ( "deadline_us",
        match r.r_deadline_us with None -> Jsonu.Null | Some d -> Jsonu.Float d );
      ( "classes",
        Jsonu.Arr
          (List.map
             (fun c ->
               Jsonu.Obj
                 [
                   ("scenario", Jsonu.Str c.cs_scenario);
                   ("sessions", Jsonu.Int c.cs_sessions);
                   ("ops_per_session", Jsonu.Int c.cs_ops);
                   ("comm_us", Jsonu.Float c.cs_comm_us);
                 ])
             r.r_classes) );
      ("total_ops", Jsonu.Int r.r_total_ops);
      ("p50_us", Jsonu.Float r.r_p50_us);
      ("p95_us", Jsonu.Float r.r_p95_us);
      ("p99_us", Jsonu.Float r.r_p99_us);
      ("mean_us", Jsonu.Float r.r_mean_us);
      ("max_us", Jsonu.Float r.r_max_us);
      ("throughput_per_s", Jsonu.Float r.r_throughput_per_s);
      ("availability", Jsonu.Float r.r_availability);
      ("duration_us", Jsonu.Float r.r_duration_us);
      ("host_util", Jsonu.Float r.r_host_util);
      ("link_util", Jsonu.Float r.r_link_util);
    ]
