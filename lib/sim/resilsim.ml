open Coign_util
open Coign_netsim
open Coign_core

type cell = {
  rr_drop_rate : float;
  rr_partition_us : float;
  rr_baseline : Adps.exec_stats; (* PR 3 retry-only path *)
  rr_resilient : Adps.exec_stats; (* breaker + fallback ladder *)
}

type grid = {
  rg_network : Network.t;
  rg_seed : int64;
  rg_clean_calls : int; (* intercepted calls of a fault-free run *)
  rg_ladder : Fallback.t;
  rg_cells : cell list;
}

let default_drop_rates = [ 0.; 0.05; 0.1 ]
let default_partitions_us = [ 0.; 200_000. ]

(* Fraction of the scenario's intercepted calls that actually executed
   before the run completed or was cut short — the availability a user
   of the distributed application experiences under the fault regime. *)
let availability g (s : Adps.exec_stats) =
  if g.rg_clean_calls = 0 then 1.
  else Float.min 1. (float_of_int s.Adps.es_intercepted /. float_of_int g.rg_clean_calls)

let run ?pool ?profiler ?(seed = 0x5EEDL) ?(jitter = 0.) ?(retry = Fault.default_retry)
    ?health ?max_probe_rounds ?modes ?(drop_rates = default_drop_rates)
    ?(partitions_us = default_partitions_us) ?(partition_start_us = 0.) ~image ~registry
    ~network scenario =
  (* One analysis session prices both the primary cut and every
     fallback rung, all off the exact network model (deterministic — no
     profiling noise in the cuts). The ladder and config are immutable;
     each execute installs its own breaker state, so cells evaluate
     independently across domains. *)
  let net = Net_profiler.exact network in
  let session = Adps.analysis_session ?profiler image in
  let image, primary = Adps.analyze_with ?profiler ~session ~image ~net () in
  let ladder = Fallback.compute ?profiler ?modes ~primary session ~net () in
  let resilience = Rte.resilience ?health ?max_probe_rounds ladder in
  let timed f =
    match profiler with
    | None -> f ()
    | Some p -> Coign_obs.Profiler.time p "resilsim_cell" f
  in
  let clean =
    timed (fun () -> Adps.execute ~image ~registry ~network ~jitter ~seed ~retry scenario)
  in
  let cells =
    Array.of_list
      (List.concat_map (fun d -> List.map (fun p -> (d, p)) partitions_us) drop_rates)
  in
  let eval (d, p) =
    let faults =
      {
        Fault.zero with
        Fault.fs_drop_rate = d;
        fs_partitions_us =
          (if p > 0. then [ (partition_start_us, partition_start_us +. p) ] else []);
      }
    in
    {
      rr_drop_rate = d;
      rr_partition_us = p;
      rr_baseline =
        timed (fun () ->
            Adps.execute ~image ~registry ~network ~jitter ~seed ~faults ~retry scenario);
      rr_resilient =
        timed (fun () ->
            Adps.execute ~image ~registry ~network ~jitter ~seed ~faults ~retry ~resilience
              scenario);
    }
  in
  let runs =
    match pool with
    | None -> Array.map eval cells
    | Some pool -> Parallel.map pool ~f:eval cells
  in
  {
    rg_network = network;
    rg_seed = seed;
    rg_clean_calls = clean.Adps.es_intercepted;
    rg_ladder = ladder;
    rg_cells = Array.to_list runs;
  }

let pp_text ppf g =
  Format.fprintf ppf "resilience grid on %s (seed 0x%LX, %d clean calls)@,"
    g.rg_network.Network.net_name g.rg_seed g.rg_clean_calls;
  Format.fprintf ppf "%a@," Fallback.pp g.rg_ladder;
  Format.fprintf ppf "%8s  %12s  %7s  %7s  %10s  %5s  %6s  %8s  %7s  %4s  %9s@," "drop"
    "partition ms" "avail-b" "avail-r" "dcomm (s)" "opens" "fovers" "stranded" "rescued"
    "rung" "done(b/r)";
  Format.fprintf ppf "%s@," (String.make 104 '-');
  List.iter
    (fun r ->
      let b = r.rr_baseline and s = r.rr_resilient in
      Format.fprintf ppf
        "%8.3f  %12.1f  %7.3f  %7.3f  %10.3f  %5d  %6d  %8d  %7d  %4d  %5s/%s@,"
        r.rr_drop_rate
        (r.rr_partition_us /. 1e3)
        (availability g b) (availability g s)
        ((s.Adps.es_comm_us -. b.Adps.es_comm_us) /. 1e6)
        s.Adps.es_breaker_opens s.Adps.es_failovers s.Adps.es_stranded_calls
        s.Adps.es_rescued_calls s.Adps.es_final_rung
        (if b.Adps.es_completed then "yes" else "cut")
        (if s.Adps.es_completed then "yes" else "cut"))
    g.rg_cells

let to_json g =
  let escape s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let side (s : Adps.exec_stats) =
    Printf.sprintf
      "{\"availability\": %.17g, \"intercepted\": %d, \"remote_calls\": %d, \"retries\": %d, \
       \"drops\": %d, \"unreachable\": %d, \"comm_us\": %.17g, \"fault_us\": %.17g, \
       \"breaker_opens\": %d, \"breaker_closes\": %d, \"failovers\": %d, \"failbacks\": %d, \
       \"migrations\": %d, \"stranded_calls\": %d, \"rescued_calls\": %d, \"final_rung\": %d, \
       \"completed\": %b}"
      (availability g s) s.Adps.es_intercepted s.Adps.es_remote_calls s.Adps.es_retries
      s.Adps.es_drops s.Adps.es_unreachable s.Adps.es_comm_us s.Adps.es_fault_us
      s.Adps.es_breaker_opens s.Adps.es_breaker_closes s.Adps.es_failovers
      s.Adps.es_failbacks s.Adps.es_migrations s.Adps.es_stranded_calls
      s.Adps.es_rescued_calls s.Adps.es_final_rung s.Adps.es_completed
  in
  let cell r =
    Printf.sprintf
      "{\"network\": \"%s\", \"seed\": \"0x%LX\", \"clean_calls\": %d, \"drop_rate\": %.17g, \
       \"partition_us\": %.17g, \"baseline\": %s, \"resilient\": %s}"
      (escape g.rg_network.Network.net_name)
      g.rg_seed g.rg_clean_calls r.rr_drop_rate r.rr_partition_us (side r.rr_baseline)
      (side r.rr_resilient)
  in
  Printf.sprintf "[\n%s\n]\n" (String.concat ",\n" (List.map cell g.rg_cells))
