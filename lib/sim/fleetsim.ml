open Coign_util
open Coign_netsim
open Coign_core

type regime = Clean | Crash | Partition

let regime_name = function
  | Clean -> "clean"
  | Crash -> "crash"
  | Partition -> "partition"

type cell = {
  fr_pool : int;
  fr_regime : regime;
  fr_baseline : Adps.exec_stats;
  fr_fleet : Adps.exec_stats;
  fr_fleet_stats : Rte.fleet_stats;
  fr_identical : bool option;
}

type grid = {
  fg_network : Network.t;
  fg_seed : int64;
  fg_clean_calls : int;
  fg_clean_remote : int;
  fg_replicas : int;
  fg_cells : cell list;
}

let default_pools = [ 1; 2; 3 ]
let default_regimes = [ Clean; Crash; Partition ]
let default_fault_window_us = (50_000., 550_000.)

let availability g (s : Adps.exec_stats) =
  if g.fg_clean_calls = 0 then 1.
  else Float.min 1. (float_of_int s.Adps.es_intercepted /. float_of_int g.fg_clean_calls)

let served g (s : Adps.exec_stats) =
  if g.fg_clean_remote = 0 then 1.
  else Float.min 1. (float_of_int s.Adps.es_remote_calls /. float_of_int g.fg_clean_remote)

let run ?pool ?profiler ?(seed = 0x5EEDL) ?(jitter = 0.) ?(retry = Fault.default_retry)
    ?health ?max_probe_rounds ?modes ?(replicas = 2) ?map ?(pools = default_pools)
    ?(regimes = default_regimes) ?(fault_window_us = default_fault_window_us) ~image
    ~registry ~network scenario =
  (* One analysis session prices the primary cut, the two-host base
     ladder and every pool ladder, all off the exact network model.
     Ladders and configs are immutable; each execute installs its own
     breaker and shard state, so cells evaluate independently across
     domains and the grid is bit-identical for any [pool]. *)
  let net = Net_profiler.exact network in
  let session = Adps.analysis_session ?profiler image in
  let image, primary = Adps.analyze_with ?profiler ~session ~image ~net () in
  let base = Fallback.compute ?profiler ?modes ~primary session ~net () in
  let resilience = Rte.resilience ?health ?max_probe_rounds base in
  let ladders =
    List.map
      (fun k -> (k, Fallback.pool_ladder ~replicas ?map ~hosts:k session ~net base))
      (List.sort_uniq compare pools)
  in
  let timed f =
    match profiler with
    | None -> f ()
    | Some p -> Coign_obs.Profiler.time p "fleetsim_cell" f
  in
  let clean =
    timed (fun () -> Adps.execute ~image ~registry ~network ~jitter ~seed ~retry scenario)
  in
  let window_spec =
    let start_us, stop_us = fault_window_us in
    { Fault.zero with Fault.fs_partitions_us = [ (start_us, stop_us) ] }
  in
  let cells =
    Array.of_list (List.concat_map (fun (k, l) -> List.map (fun r -> (k, l, r)) regimes) ladders)
  in
  let eval (k, ladder, regime) =
    (* The baseline is PR 5's two-host resilience path under the
       regime applied globally. Fleet cells see the same regime, but a
       crash is a *host* event: host 0's link partitions while the
       rest of the pool stays reachable. A pool of one has no other
       host, so its crash is the global partition — exactly the
       baseline's world, which is what lets the identity gate fire and
       the pool-1 row double as the bit-identity check. *)
    let global_faults =
      match regime with
      | Clean -> None
      | Crash | Partition -> Some window_spec
    in
    let host_faults =
      match regime with Crash when k > 1 -> [ (0, window_spec) ] | _ -> []
    in
    let fleet_faults = if host_faults = [] then global_faults else None in
    let baseline =
      timed (fun () ->
          Adps.execute ~image ~registry ~network ~jitter ~seed ?faults:global_faults ~retry
            ~resilience scenario)
    in
    let fleet_config = Rte.fleet ?health ?max_probe_rounds ~host_faults ladder in
    let fleet_exec, fleet_stats =
      timed (fun () ->
          Adps.execute_fleet ~image ~registry ~network ~jitter ~seed ?faults:fleet_faults
            ~retry ~fleet:fleet_config scenario)
    in
    {
      fr_pool = k;
      fr_regime = regime;
      fr_baseline = baseline;
      fr_fleet = fleet_exec;
      fr_fleet_stats = fleet_stats;
      fr_identical = (if k = 1 then Some (fleet_exec = baseline) else None);
    }
  in
  let runs =
    match pool with
    | None -> Array.map eval cells
    | Some pool -> Parallel.map pool ~f:eval cells
  in
  {
    fg_network = network;
    fg_seed = seed;
    fg_clean_calls = clean.Adps.es_intercepted;
    fg_clean_remote = clean.Adps.es_remote_calls;
    fg_replicas = replicas;
    fg_cells = Array.to_list runs;
  }

let pp_text ppf g =
  Format.fprintf ppf
    "fleet grid on %s (seed 0x%LX, %d clean calls, %d clean remote, %d replica(s))@,"
    g.fg_network.Network.net_name g.fg_seed g.fg_clean_calls g.fg_clean_remote g.fg_replicas;
  Format.fprintf ppf "%4s  %9s  %7s  %7s  %7s  %7s  %6s  %6s  %6s  %7s  %5s  %6s  %5s@,"
    "pool" "regime" "avail-b" "avail-f" "serve-b" "serve-f" "opens" "promos" "splits"
    "resizes" "hosts" "rung" "ident";
  Format.fprintf ppf "%s@," (String.make 108 '-');
  List.iter
    (fun r ->
      let b = r.fr_baseline and f = r.fr_fleet and fs = r.fr_fleet_stats in
      Format.fprintf ppf
        "%4d  %9s  %7.3f  %7.3f  %7.3f  %7.3f  %6d  %6d  %6d  %7d  %5d  %6d  %5s@," r.fr_pool
        (regime_name r.fr_regime) (availability g b) (availability g f) (served g b)
        (served g f) fs.Rte.fs_breaker_opens fs.Rte.fs_promotions fs.Rte.fs_splits
        fs.Rte.fs_resizes fs.Rte.fs_final_hosts fs.Rte.fs_final_rung
        (match r.fr_identical with
        | None -> "-"
        | Some true -> "yes"
        | Some false -> "NO"))
    g.fg_cells

let to_json g =
  let escape s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let side (s : Adps.exec_stats) =
    Printf.sprintf
      "{\"availability\": %.17g, \"served\": %.17g, \"intercepted\": %d, \"remote_calls\": %d, \
       \"retries\": %d, \"drops\": %d, \"unreachable\": %d, \"comm_us\": %.17g, \
       \"fault_us\": %.17g, \"breaker_opens\": %d, \"failovers\": %d, \"failbacks\": %d, \
       \"migrations\": %d, \"stranded_calls\": %d, \"rescued_calls\": %d, \
       \"final_rung\": %d, \"completed\": %b}"
      (availability g s) (served g s) s.Adps.es_intercepted s.Adps.es_remote_calls
      s.Adps.es_retries s.Adps.es_drops s.Adps.es_unreachable s.Adps.es_comm_us
      s.Adps.es_fault_us s.Adps.es_breaker_opens s.Adps.es_failovers s.Adps.es_failbacks
      s.Adps.es_migrations s.Adps.es_stranded_calls s.Adps.es_rescued_calls
      s.Adps.es_final_rung s.Adps.es_completed
  in
  let pool_side (fs : Rte.fleet_stats) =
    Printf.sprintf
      "{\"promotions\": %d, \"splits\": %d, \"resizes\": %d, \"inter_host_calls\": %d, \
       \"final_hosts\": %d, \"final_shards\": %d}"
      fs.Rte.fs_promotions fs.Rte.fs_splits fs.Rte.fs_resizes fs.Rte.fs_inter_host_calls
      fs.Rte.fs_final_hosts fs.Rte.fs_final_shards
  in
  let cell r =
    Printf.sprintf
      "{\"network\": \"%s\", \"seed\": \"0x%LX\", \"clean_calls\": %d, \"clean_remote\": %d, \
       \"pool\": %d, \"regime\": \"%s\", \"identical\": %s, \"baseline\": %s, \"fleet\": %s, \
       \"pool_stats\": %s}"
      (escape g.fg_network.Network.net_name)
      g.fg_seed g.fg_clean_calls g.fg_clean_remote r.fr_pool (regime_name r.fr_regime)
      (match r.fr_identical with
      | None -> "null"
      | Some b -> string_of_bool b)
      (side r.fr_baseline) (side r.fr_fleet)
      (pool_side r.fr_fleet_stats)
  in
  Printf.sprintf "[\n%s\n]\n" (String.concat ",\n" (List.map cell g.fg_cells))
