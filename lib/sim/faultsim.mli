(** Fault-grid simulation of a distributed application.

    Runs one scenario under the image's stored distribution repeatedly,
    each time against a different point of a (drop rate × partition
    length) fault grid, and tabulates how the distributed RTE's retry
    policy and graceful degradation cope: completed calls, retries,
    instantiation fallbacks, abandoned calls, and the communication
    time attributable to faults.

    Every cell is seeded from the same master seed, and fault verdicts
    are pure hashes of (seed, time, size) — so a grid is reproducible
    run to run and across any number of worker domains. *)

type run = {
  fr_drop_rate : float;
  fr_partition_us : float;     (** partition window length; 0 = none *)
  fr_stats : Coign_core.Adps.exec_stats;
}

type grid = {
  fg_network : Coign_netsim.Network.t;
  fg_seed : int64;
  fg_runs : run list;          (** row-major: drop rate outer,
                                   partition length inner *)
}

val default_drop_rates : float list
(** [0; 0.01; 0.05; 0.1] *)

val default_partitions_us : float list
(** [0; 50_000] — none, and a 50 ms outage *)

val run :
  ?pool:Coign_util.Parallel.t ->
  ?profiler:Coign_obs.Profiler.t ->
  ?seed:int64 ->
  ?jitter:float ->
  ?retry:Coign_netsim.Fault.retry_policy ->
  ?drop_rates:float list ->
  ?partitions_us:float list ->
  ?partition_start_us:float ->
  image:Coign_image.Binary_image.t ->
  registry:Coign_com.Runtime.registry ->
  network:Coign_netsim.Network.t ->
  Coign_core.Adps.scenario ->
  grid
(** Execute the grid. The image must be in distributed mode (same
    requirement as {!Coign_core.Adps.execute}). Nonzero partition
    lengths become one [\[partition_start_us, start + length)] window
    on the run's virtual clock. Cells are independent — with a [pool]
    they run across domains, and the grid is identical either way
    (a tested property). [profiler] records each cell's wall time
    under the ["faultsim_cell"] phase, aggregated grid-wide (safe with
    a [pool]; recording is mutex-protected). *)

val pp_text : Format.formatter -> grid -> unit
(** The human-readable table [coign faultsim] prints. *)

val to_json : grid -> string
(** The grid as a JSON array, one object per cell; floats are printed
    with [%.17g] so equal grids serialize byte-identically. *)
