open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps
module Tap = Coign_obs.Tap

type phase_stat = {
  ph_scenarios : string list;
  ph_stale_comm_us : float;
  ph_watched_comm_us : float;
}

type result = {
  w_app : string;
  w_network : string;
  w_seed : int64;
  w_threshold : float;
  w_check_every : int;
  w_half_life_us : float;
  w_profile_mix : string list;
  w_phase_stats : phase_stat list;
  w_stale : Analysis.distribution;
  w_oracle : Analysis.distribution;
  w_final_servers : int;
  w_converged : bool;
  w_stale_comm_us : float;
  w_watched_comm_us : float;
  w_steady_stale_us : float;
  w_steady_watched_us : float;
  w_drift_checks : int;
  w_drift_detections : int;
  w_repartitions : int;
  w_migrations : int;
  w_unchanged_cuts : int;
  w_rejected_cuts : int;
  w_last_similarity : float;
  w_tap_offered : int;
  w_tap_sampled : int;
  w_timeline : Rte.watch_checkpoint list;
}

(* One full pass over the phase schedule under the distributed RTE —
   stale (no watch) or watched. *)
type sched = {
  sd_phase_comm : float array;
  sd_total_comm : float;
  sd_stats : Rte.stats;
  sd_timeline : Rte.watch_checkpoint list;
  sd_final_placement : Constraints.location array;
  sd_tap_offered : int;
  sd_tap_sampled : int;
}

type cell = C_sched of sched | C_oracle of Analysis.distribution

let scenario_of app id =
  try App.scenario app id with Not_found -> invalid_arg ("Watchsim.run: unknown scenario " ^ id)

let run ?pool ?metrics ?(threshold = 0.90) ?(check_every = 64) ?(min_dwell_us = 750_000.)
    ?(min_window = 16.) ?(half_life_us = 750_000.) ?(sample_every = 4) ?(seed = 0x5EEDL)
    ~profile_mix ~phases ~image ~network () =
  if profile_mix = [] then invalid_arg "Watchsim.run: empty profile mix";
  if phases = [] || List.exists (fun p -> p = []) phases then
    invalid_arg "Watchsim.run: phases must be non-empty";
  let app =
    try Suite.find_app image.Coign_image.Binary_image.img_name
    with Not_found ->
      invalid_arg
        ("Watchsim.run: unknown application " ^ image.Coign_image.Binary_image.img_name)
  in
  List.iter
    (fun id -> ignore (scenario_of app id))
    (profile_mix @ List.concat phases);
  let net = Net_profiler.exact network in
  (* Offline pipeline: profile the declared mix, analyze, and keep the
     session — the watch re-prices this exact session online. *)
  let profiled =
    List.fold_left
      (fun img id ->
        fst
          (Adps.profile ~image:img ~registry:app.App.app_registry
             (scenario_of app id).App.sc_run))
      image profile_mix
  in
  let session = Adps.analysis_session profiled in
  let dist_image, stale_dist = Adps.analyze_with ~session ~image:profiled ~net () in
  let phase_arr = Array.of_list phases in
  (* Each cell owns its ctx, classifier decode, and (for the watched
     cell) session copy, so cells evaluate independently across
     domains: a pool changes wall time, never a bit of the result. *)
  let run_schedule ~watched () =
    let classifier, dist =
      match Adps.load_distribution dist_image with
      | Some v -> v
      | None -> assert false
    in
    let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
    let wc =
      if not watched then None
      else
        Some
          (Rte.watch ~threshold ~check_every ~min_dwell_us ~min_window ~half_life_us
             ~sample_every ~tap:Tap.null_sink ~net (Analysis.Session.copy session))
    in
    let rte =
      Rte.install_distributed ?metrics:(if watched then metrics else None) ~classifier
        ~config:
          {
            Rte.dc_factory_policy = Factory.By_classification dist;
            dc_network = network;
            dc_jitter = 0.;
            dc_seed = seed;
            dc_faults = None;
            dc_retry = Fault.default_retry;
            dc_resilience = None;
            dc_fleet = None;
            dc_watch = wc;
          }
        ctx
    in
    let phase_comm = Array.make (Array.length phase_arr) 0. in
    let before = ref 0. in
    Array.iteri
      (fun i ids ->
        List.iter (fun id -> (scenario_of app id).App.sc_run ctx) ids;
        let c = Rte.comm_us rte in
        phase_comm.(i) <- c -. !before;
        before := c)
      phase_arr;
    Rte.uninstall rte;
    let offered, sampled = Option.value ~default:(0, 0) (Rte.watch_tap_counts rte) in
    {
      sd_phase_comm = phase_comm;
      sd_total_comm = Rte.comm_us rte;
      sd_stats = Rte.stats rte;
      sd_timeline = Rte.watch_timeline rte;
      sd_final_placement =
        (match Rte.watch_placement rte with
        | Some d -> Array.copy d.Analysis.placement
        | None -> Array.copy dist.Analysis.placement);
      sd_tap_offered = offered;
      sd_tap_sampled = sampled;
    }
  in
  let oracle () =
    (* What a fresh offline analyze would choose given a profile of the
       post-shift usage: record the final phase under the deployment's
       classifier state, then cut with the same constraints. *)
    let classifier =
      match Adps.load_profile profiled with Some (c, _) -> c | None -> assert false
    in
    let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
    let rte = Rte.install_profiling ~classifier ctx in
    List.iter
      (fun id -> (scenario_of app id).App.sc_run ctx)
      phase_arr.(Array.length phase_arr - 1);
    Rte.uninstall rte;
    Analysis.choose ~classifier ~icc:(Rte.icc rte)
      ~constraints:(Analysis.Session.constraints session) ~net ()
  in
  let eval = function
    | `Stale -> C_sched (run_schedule ~watched:false ())
    | `Watched -> C_sched (run_schedule ~watched:true ())
    | `Oracle -> C_oracle (oracle ())
  in
  let cells = [| `Stale; `Watched; `Oracle |] in
  let evaluated =
    match pool with None -> Array.map eval cells | Some pool -> Parallel.map pool ~f:eval cells
  in
  let stale, watched, oracle_dist =
    match evaluated with
    | [| C_sched s; C_sched w; C_oracle o |] -> (s, w, o)
    | _ -> assert false
  in
  let last = Array.length phase_arr - 1 in
  let servers placement =
    Array.fold_left
      (fun n loc -> if loc = Constraints.Server then n + 1 else n)
      0 placement
  in
  {
    w_app = app.App.app_name;
    w_network = network.Network.net_name;
    w_seed = seed;
    w_threshold = threshold;
    w_check_every = check_every;
    w_half_life_us = half_life_us;
    w_profile_mix = profile_mix;
    w_phase_stats =
      List.mapi
        (fun i ids ->
          {
            ph_scenarios = ids;
            ph_stale_comm_us = stale.sd_phase_comm.(i);
            ph_watched_comm_us = watched.sd_phase_comm.(i);
          })
        phases;
    w_stale = stale_dist;
    w_oracle = oracle_dist;
    w_final_servers = servers watched.sd_final_placement;
    w_converged = watched.sd_final_placement = oracle_dist.Analysis.placement;
    w_stale_comm_us = stale.sd_total_comm;
    w_watched_comm_us = watched.sd_total_comm;
    w_steady_stale_us = stale.sd_phase_comm.(last);
    w_steady_watched_us = watched.sd_phase_comm.(last);
    w_drift_checks = watched.sd_stats.Rte.st_drift_checks;
    w_drift_detections = watched.sd_stats.Rte.st_drift_detections;
    w_repartitions = watched.sd_stats.Rte.st_repartitions;
    w_migrations = watched.sd_stats.Rte.st_watch_migrations;
    w_unchanged_cuts = watched.sd_stats.Rte.st_unchanged_cuts;
    w_rejected_cuts = watched.sd_stats.Rte.st_rejected_cuts;
    w_last_similarity = watched.sd_stats.Rte.st_last_similarity;
    w_tap_offered = watched.sd_tap_offered;
    w_tap_sampled = watched.sd_tap_sampled;
    w_timeline = watched.sd_timeline;
  }

let action_name = function
  | Rte.W_steady -> "steady"
  | Rte.W_unchanged -> "unchanged"
  | Rte.W_repartitioned _ -> "repartitioned"
  | Rte.W_rejected _ -> "rejected"

let pp_text ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "watch %s on %s (seed 0x%LX)@," r.w_app r.w_network r.w_seed;
  Format.fprintf ppf
    "drift: threshold %.2f, check every %d observations, half-life %.1f ms@," r.w_threshold
    r.w_check_every (r.w_half_life_us /. 1e3);
  Format.fprintf ppf "profile mix: %s@," (String.concat " " r.w_profile_mix);
  List.iteri
    (fun i p ->
      Format.fprintf ppf "phase %d (%s): stale %.3f ms, watched %.3f ms@," (i + 1)
        (String.concat " " p.ph_scenarios)
        (p.ph_stale_comm_us /. 1e3)
        (p.ph_watched_comm_us /. 1e3))
    r.w_phase_stats;
  Format.fprintf ppf
    "drift checks %d, detections %d, repartitions %d (%d instances moved), last similarity %.3f@,"
    r.w_drift_checks r.w_drift_detections r.w_repartitions r.w_migrations r.w_last_similarity;
  List.iter
    (fun (k : Rte.watch_checkpoint) ->
      match k.Rte.wk_action with
      | Rte.W_steady -> ()
      | Rte.W_unchanged ->
          Format.fprintf ppf "  at %.1f us: similarity %.3f, cut unchanged@," k.Rte.wk_at_us
            k.Rte.wk_similarity
      | Rte.W_repartitioned { wa_migrated; wa_left; wa_servers } ->
          Format.fprintf ppf
            "  at %.1f us: similarity %.3f, repartitioned (%d moved, %d left, %d servers)@,"
            k.Rte.wk_at_us k.Rte.wk_similarity wa_migrated wa_left wa_servers
      | Rte.W_rejected n ->
          Format.fprintf ppf "  at %.1f us: similarity %.3f, candidate rejected (%d violations)@,"
            k.Rte.wk_at_us k.Rte.wk_similarity n)
    r.w_timeline;
  Format.fprintf ppf "cut: stale %d servers, final %d servers, oracle %d servers@,"
    r.w_stale.Analysis.server_count r.w_final_servers r.w_oracle.Analysis.server_count;
  Format.fprintf ppf "converged to oracle cut: %s@," (if r.w_converged then "yes" else "no");
  let reduction =
    if r.w_steady_stale_us > 0. then
      100. *. (r.w_steady_stale_us -. r.w_steady_watched_us) /. r.w_steady_stale_us
    else 0.
  in
  Format.fprintf ppf "steady state: stale %.3f ms, watched %.3f ms (%+.1f%%)@,"
    (r.w_steady_stale_us /. 1e3)
    (r.w_steady_watched_us /. 1e3)
    (-.reduction);
  Format.fprintf ppf "tap: %d offered, %d sampled@]" r.w_tap_offered r.w_tap_sampled

let to_json r =
  let open Jsonu in
  let checkpoint (k : Rte.watch_checkpoint) =
    let base =
      [
        ("at_us", Float k.Rte.wk_at_us);
        ("similarity", Float k.Rte.wk_similarity);
        ("window_pairs", Int k.Rte.wk_window_pairs);
        ("action", Str (action_name k.Rte.wk_action));
      ]
    in
    let extra =
      match k.Rte.wk_action with
      | Rte.W_steady | Rte.W_unchanged -> []
      | Rte.W_repartitioned { wa_migrated; wa_left; wa_servers } ->
          [ ("migrated", Int wa_migrated); ("left", Int wa_left); ("servers", Int wa_servers) ]
      | Rte.W_rejected n -> [ ("violations", Int n) ]
    in
    Obj (base @ extra)
  in
  Obj
    [
      ("app", Str r.w_app);
      ("network", Str r.w_network);
      ("seed", Str (Printf.sprintf "0x%LX" r.w_seed));
      ("threshold", Float r.w_threshold);
      ("check_every", Int r.w_check_every);
      ("half_life_us", Float r.w_half_life_us);
      ("profile_mix", Arr (List.map (fun s -> Str s) r.w_profile_mix));
      ( "phases",
        Arr
          (List.map
             (fun p ->
               Obj
                 [
                   ("scenarios", Arr (List.map (fun s -> Str s) p.ph_scenarios));
                   ("stale_comm_us", Float p.ph_stale_comm_us);
                   ("watched_comm_us", Float p.ph_watched_comm_us);
                 ])
             r.w_phase_stats) );
      ("stale_servers", Int r.w_stale.Analysis.server_count);
      ("final_servers", Int r.w_final_servers);
      ("oracle_servers", Int r.w_oracle.Analysis.server_count);
      ("converged", Bool r.w_converged);
      ("stale_comm_us", Float r.w_stale_comm_us);
      ("watched_comm_us", Float r.w_watched_comm_us);
      ("steady_stale_us", Float r.w_steady_stale_us);
      ("steady_watched_us", Float r.w_steady_watched_us);
      ("drift_checks", Int r.w_drift_checks);
      ("drift_detections", Int r.w_drift_detections);
      ("repartitions", Int r.w_repartitions);
      ("migrations", Int r.w_migrations);
      ("unchanged_cuts", Int r.w_unchanged_cuts);
      ("rejected_cuts", Int r.w_rejected_cuts);
      ("last_similarity", Float r.w_last_similarity);
      ("tap_offered", Int r.w_tap_offered);
      ("tap_sampled", Int r.w_tap_sampled);
      ("timeline", Arr (List.map checkpoint r.w_timeline));
    ]
