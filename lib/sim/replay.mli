(** Event-log-driven distribution simulation.

    Paper §3.3: "a colleague has used logs from the event logger to
    drive detailed application simulations." This module is that use
    case: take the full event trace of one profiling run and replay it
    under an arbitrary placement and network — estimating what a
    distributed execution would cost without re-running the
    application. Because scenarios are deterministic, replaying the
    trace under a placement reproduces exactly the communication the
    distributed RTE would charge (a tested property).

    Replay also reports would-be faults: calls that cross machines over
    non-remotable interfaces, which a real run would abort with
    [E_cannot_marshal] — useful for checking hand-made placements
    before trying them. *)

type estimate = {
  re_comm_us : float;          (** total cross-machine communication *)
  re_remote_calls : int;       (** calls and forwarded instantiations *)
  re_remote_bytes : int;
  re_server_instances : int;   (** instances the placement sends away *)
  re_violations : (string * string) list;
      (** (interface, method) of every non-remotable cross-machine
          call the placement would cause *)
  re_retries : int;            (** expected retries under the fault model *)
  re_drops : int;
  re_spikes : int;
  re_fallbacks : int;          (** instantiations degraded to the creator *)
  re_unreachable : int;
      (** calls a live run would abandon with [E_unreachable]; the
          estimator counts them and keeps replaying *)
  re_fault_us : float;         (** comm time attributable to faults *)
}

val replay :
  ?faults:Coign_netsim.Fault.t ->
  ?retry:Coign_netsim.Fault.retry_policy ->
  events:Coign_core.Event.t list ->
  placement:(int -> Coign_core.Constraints.location) ->
  network:Coign_netsim.Network.t ->
  unit ->
  estimate
(** [placement] maps a classification to a machine (as
    {!Coign_core.Analysis.location_of} does); instances whose
    classification maps nowhere follow their creator, like the
    component factory. The trace must come from a profiling run (it
    needs the instantiation events to track instance machines).

    [faults] injects a fault model into the estimate: every
    cross-machine charge becomes a retried {!Coign_netsim.Fault.call}
    against the replay's virtual clock (accumulated communication
    time), reporting expected retries, degradations, and abandoned
    calls without re-running the application. Omitting it — or passing
    a model built from {!Coign_netsim.Fault.zero} — reproduces the
    fault-free estimate bit for bit. *)

val record_scenario :
  registry:Coign_com.Runtime.registry ->
  classifier:Coign_core.Classifier.t ->
  (Coign_com.Runtime.ctx -> unit) ->
  Coign_core.Event.t list
(** Convenience: run a scenario once under the profiling RTE with an
    event recorder attached and return the trace. *)

val what_if :
  ?faults:Coign_netsim.Fault.t ->
  ?retry:Coign_netsim.Fault.retry_policy ->
  events:Coign_core.Event.t list ->
  distribution:Coign_core.Analysis.distribution ->
  network:Coign_netsim.Network.t ->
  unit ->
  estimate
(** Replay under an analyzer-chosen distribution. *)
