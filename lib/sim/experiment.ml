open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps

type row = {
  row_id : string;
  row_desc : string;
  default_comm_us : float;
  coign_comm_us : float;
  savings : float;
  predicted_total_us : float;
  measured_total_us : float;
  prediction_error : float;
  node_count : int;
  server_classifications : int;
  total_instances : int;
  server_instances : int;
  distribution : Analysis.distribution;
  classifier : Classifier.t;
}

let run_scenario ?(network = Network.ethernet_10) ?(jitter = 0.015) ?(seed = 0xC016EL)
    (app : App.t) (sc : App.scenario) =
  let image = Adps.instrument app.App.app_image in
  let image, stats = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let rng = Prng.create seed in
  let net = Net_profiler.profile rng network in
  let image, distribution = Adps.analyze ~image ~net () in
  let classifier, _ =
    match Adps.load_distribution image with
    | Some cd -> cd
    | None -> assert false
  in
  let coign =
    Adps.execute ~image ~registry:app.App.app_registry ~network ~jitter
      ~seed:(Int64.add seed 1L) sc.App.sc_run
  in
  let default_classifier = Classifier.create (Classifier.kind classifier) in
  let default =
    Adps.execute_with_policy ~registry:app.App.app_registry ~classifier:default_classifier
      ~policy:(Factory.By_class app.App.app_default_placement) ~network ~jitter
      ~seed:(Int64.add seed 2L) sc.App.sc_run
  in
  let predicted_total_us =
    stats.Adps.ps_compute_us +. distribution.Analysis.predicted_comm_us
  in
  let measured_total_us = coign.Adps.es_total_us in
  {
    row_id = sc.App.sc_id;
    row_desc = sc.App.sc_desc;
    default_comm_us = default.Adps.es_comm_us;
    coign_comm_us = coign.Adps.es_comm_us;
    savings =
      (if default.Adps.es_comm_us <= 0. then 0.
       else Float.max 0. (1. -. (coign.Adps.es_comm_us /. default.Adps.es_comm_us)));
    predicted_total_us;
    measured_total_us;
    prediction_error = Stats.ratio_error ~predicted:predicted_total_us ~measured:measured_total_us;
    node_count = distribution.Analysis.node_count;
    server_classifications = distribution.Analysis.server_count;
    total_instances = coign.Adps.es_instances;
    server_instances = coign.Adps.es_server_instances;
    distribution;
    classifier;
  }

let run_app ?network ?jitter ?seed (app : App.t) =
  List.map (run_scenario ?network ?jitter ?seed app) app.App.app_scenarios

let run_suite ?network ?jitter ?seed ?pool apps =
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (app : App.t) -> List.map (fun sc -> (app, sc)) app.App.app_scenarios)
         apps)
  in
  let run (app, sc) = run_scenario ?network ?jitter ?seed app sc in
  let rows =
    match pool with
    | None -> Array.map run tasks
    | Some pool -> Parallel.map pool ~f:run tasks
  in
  Array.to_list rows

let server_class_histogram row =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let cls = Classifier.class_of_classification row.classifier c in
      Hashtbl.replace counts cls (1 + Option.value ~default:0 (Hashtbl.find_opt counts cls)))
    (Analysis.server_classifications row.distribution);
  Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) counts []
  |> List.sort (fun (ca, na) (cb, nb) -> compare (-na, ca) (-nb, cb))

let placements_by_class row =
  let totals = Hashtbl.create 32 and server = Hashtbl.create 32 in
  for c = 0 to row.node_count - 1 do
    let cls = Classifier.class_of_classification row.classifier c in
    Hashtbl.replace totals cls (1 + Option.value ~default:0 (Hashtbl.find_opt totals cls));
    if Analysis.location_of row.distribution c = Constraints.Server then
      Hashtbl.replace server cls (1 + Option.value ~default:0 (Hashtbl.find_opt server cls))
  done;
  Hashtbl.fold
    (fun cls total acc ->
      (cls, Option.value ~default:0 (Hashtbl.find_opt server cls), total) :: acc)
    totals []
  |> List.sort compare

type adaptive_row = {
  ar_network : string;
  ar_server_classifications : int;
  ar_predicted_comm_us : float;
}

let across_networks ?(networks = Network.presets) (app : App.t) (sc : App.scenario) =
  let image = Adps.instrument app.App.app_image in
  let image, _stats = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  (* One analysis session; only the pricing/cut stage runs per network. *)
  let session = Adps.analysis_session image in
  List.map
    (fun network ->
      let rng = Prng.create 7L in
      let net = Net_profiler.profile rng network in
      let distribution = Analysis.Session.solve session ~net in
      {
        ar_network = network.Network.net_name;
        ar_server_classifications = distribution.Analysis.server_count;
        ar_predicted_comm_us = distribution.Analysis.predicted_comm_us;
      })
    networks

type sweep_point = {
  sw_network : Network.t;
  sw_server_classifications : int;
  sw_cut_ns : int;
  sw_predicted_comm_us : float;
}

let sweep_point ?(profile_seed = 7L) ?profiler session network =
  let net = Net_profiler.profile (Prng.create profile_seed) network in
  let d = Analysis.Session.solve ?profiler session ~net in
  {
    sw_network = network;
    sw_server_classifications = d.Analysis.server_count;
    sw_cut_ns = d.Analysis.cut_ns;
    sw_predicted_comm_us = d.Analysis.predicted_comm_us;
  }

let sweep ?pool ?profile_seed ?profiler ~session networks =
  let networks = Array.of_list networks in
  let points =
    match pool with
    | None -> Array.map (sweep_point ?profile_seed ?profiler session) networks
    | Some pool ->
        (* Sessions are single-domain: each participating domain prices
           and cuts on its own copy of the flow network (the abstract
           graph itself is shared — it is immutable after creation).
           The profiler, when given, is shared across the domains — its
           recording is mutex-protected, so grid-wide phase totals
           aggregate correctly. *)
        Parallel.map_init pool
          ~init:(fun () -> Analysis.Session.copy session)
          ~f:(fun s network -> sweep_point ?profile_seed ?profiler s network)
          networks
  in
  Array.to_list points
