(** Resilience-grid simulation: adaptive failover vs. retry-only.

    For each point of a (drop rate × partition length) fault grid, runs
    the scenario twice under the image's stored distribution — once with
    the PR 3 retry-only distributed RTE (the baseline) and once with a
    resilience policy attached (circuit breaker + precomputed fallback
    ladder) — and tabulates the availability and communication-time
    consequences side by side.

    Availability is measured against a fault-free run of the same
    scenario: the fraction of its intercepted calls that executed
    before the faulted run completed or was cut short by
    [E_unreachable]. The fallback ladder is computed once for the whole
    grid from the exact network model, so every cell fails over across
    the same rungs.

    Determinism mirrors {!Faultsim}: every cell is seeded from the same
    master seed, the breaker draws no randomness (it is driven by the
    virtual clock), and cells are independent — a [pool] changes
    wall time, never results. *)

type cell = {
  rr_drop_rate : float;
  rr_partition_us : float;     (** partition window length; 0 = none *)
  rr_baseline : Coign_core.Adps.exec_stats;   (** retry-only *)
  rr_resilient : Coign_core.Adps.exec_stats;  (** breaker + ladder *)
}

type grid = {
  rg_network : Coign_netsim.Network.t;
  rg_seed : int64;
  rg_clean_calls : int;        (** intercepted calls of the fault-free
                                   run — the availability denominator *)
  rg_ladder : Coign_core.Fallback.t;
  rg_cells : cell list;        (** row-major: drop rate outer,
                                   partition length inner *)
}

val default_drop_rates : float list
(** [0; 0.05; 0.1] *)

val default_partitions_us : float list
(** [0; 200_000] — none, and a 200 ms outage *)

val availability : grid -> Coign_core.Adps.exec_stats -> float
(** Intercepted calls as a fraction of the clean run's, capped at 1;
    1 when the clean run intercepted nothing. *)

val run :
  ?pool:Coign_util.Parallel.t ->
  ?profiler:Coign_obs.Profiler.t ->
  ?seed:int64 ->
  ?jitter:float ->
  ?retry:Coign_netsim.Fault.retry_policy ->
  ?health:Coign_netsim.Health.policy ->
  ?max_probe_rounds:int ->
  ?modes:(string * Coign_netsim.Net_profiler.t) list ->
  ?drop_rates:float list ->
  ?partitions_us:float list ->
  ?partition_start_us:float ->
  image:Coign_image.Binary_image.t ->
  registry:Coign_com.Runtime.registry ->
  network:Coign_netsim.Network.t ->
  Coign_core.Adps.scenario ->
  grid
(** Execute the grid. The image must hold an accumulated profile (like
    {!Coign_core.Adps.analyze} and [coign sweep]): one analysis session
    prices the primary cut — rung 0, the distribution every run
    installs — and the fallback rungs, then each cell executes the
    resulting distributed image. [health], [max_probe_rounds] and
    [modes] configure the resilient side; the baseline side never sees
    them. Nonzero partition lengths become one
    [\[partition_start_us, start + length)] window on the run's virtual
    clock. [profiler] times the analysis under its usual phases and
    every execution (clean, baseline, resilient) under the
    ["resilsim_cell"] phase. *)

val pp_text : Format.formatter -> grid -> unit
(** The human-readable table [coign resilience] prints. *)

val to_json : grid -> string
(** The grid as a JSON array, one object per cell with [baseline] and
    [resilient] sub-objects; floats are printed with [%.17g] so equal
    grids serialize byte-identically. *)
