(** Scenario-level experiment driver.

    Runs one application scenario through the complete Coign pipeline
    and both execution configurations, producing one row of the
    paper's Tables 4 and 5:

    - profile the scenario on the instrumented binary;
    - analyze against the sampled network profile, yielding the Coign
      distribution (whose composition reproduces Figures 4-8);
    - execute under the developer's default distribution and under the
      Coign distribution on the ground-truth network (with measurement
      jitter), giving Table 4's communication times;
    - compare the model's predicted execution time against the
      "measured" simulated time, giving Table 5. *)

type row = {
  row_id : string;
  row_desc : string;
  default_comm_us : float;    (** Table 4, default distribution *)
  coign_comm_us : float;      (** Table 4, Coign-chosen distribution *)
  savings : float;            (** 1 - coign/default, in [0,1]; 0 when
                                  the default has no communication *)
  predicted_total_us : float; (** Table 5, model *)
  measured_total_us : float;  (** Table 5, simulated run *)
  prediction_error : float;   (** (predicted - measured) / measured *)
  node_count : int;           (** classifications analyzed *)
  server_classifications : int;
  total_instances : int;      (** instances in the Coign run *)
  server_instances : int;     (** of which placed on the server *)
  distribution : Coign_core.Analysis.distribution;
  classifier : Coign_core.Classifier.t;
}

val run_scenario :
  ?network:Coign_netsim.Network.t ->
  ?jitter:float ->
  ?seed:int64 ->
  Coign_apps.App.t ->
  Coign_apps.App.scenario ->
  row
(** Defaults: the paper's 10BaseT Ethernet testbed, 1.5% measurement
    jitter, a fixed seed. *)

val run_app :
  ?network:Coign_netsim.Network.t -> ?jitter:float -> ?seed:int64 ->
  Coign_apps.App.t -> row list
(** Every scenario of the application, in suite order. *)

val run_suite :
  ?network:Coign_netsim.Network.t ->
  ?jitter:float ->
  ?seed:int64 ->
  ?pool:Coign_util.Parallel.t ->
  Coign_apps.App.t list ->
  row list
(** Every scenario of every application, flattened in suite order.
    Scenario runs are independent (each builds its own images, RTEs,
    and seeded PRNGs), so with [pool] they execute across domains;
    rows still come back in suite order and are byte-identical to the
    sequential run (see the determinism tests). *)

val server_class_histogram : row -> (string * int) list
(** How many server-placed classifications each component class
    contributes — the textual rendering of the paper's distribution
    figures. Sorted descending by count, then by name. *)

val placements_by_class :
  row -> (string * int * int) list
(** [(class, server_classifications, total_classifications)] for every
    class that appears in the analyzed graph. *)

(** {1 Network adaptivity (paper §4.4)} *)

type adaptive_row = {
  ar_network : string;
  ar_server_classifications : int;
  ar_predicted_comm_us : float;
}

val across_networks :
  ?networks:Coign_netsim.Network.t list ->
  Coign_apps.App.t -> Coign_apps.App.scenario -> adaptive_row list
(** Re-analyze one scenario's profile against each network; the chosen
    distribution shifts as bandwidth/latency tradeoffs change. Profiles
    once, then reuses one {!Coign_core.Analysis.Session} — only the
    pricing/cut stage runs per network. *)

type sweep_point = {
  sw_network : Coign_netsim.Network.t;
  sw_server_classifications : int;
  sw_cut_ns : int;
  sw_predicted_comm_us : float;
}

val sweep :
  ?pool:Coign_util.Parallel.t ->
  ?profile_seed:int64 ->
  ?profiler:Coign_obs.Profiler.t ->
  session:Coign_core.Analysis.Session.t ->
  Coign_netsim.Network.t list ->
  sweep_point list
(** Solve one analysis session against every network (each sampled
    with a fresh PRNG from [profile_seed], default 7), in list order —
    the placement-vs-network tables behind the paper's Figures 4-8 and
    the [coign sweep] subcommand. With [pool], points are solved in
    parallel on per-domain session copies; the result is identical to
    the sequential path. [profiler] aggregates the per-point
    ["pricing"]/["cut"] phases across the whole grid; it is safe to
    share with a [pool] (recording is mutex-protected). *)
