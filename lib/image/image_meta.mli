(** Static interface metadata embedded in a binary image.

    Coign's static analyzer reads interface metadata out of the
    application binary itself (paper §4): MIDL signatures of every
    exported interface, which interfaces each component class
    implements, and which classes each class can instantiate. This
    record is the reproduction's equivalent — written into the image at
    build time so [coign lint] and [coign analyze] can reason about
    interface flow without executing a single scenario. *)

open Coign_idl

type iface = { if_name : string; if_methods : Idl_type.method_sig list }

type cls = {
  cl_name : string;
  cl_provides : string list;  (** interface names the class implements *)
  cl_creates : string list;   (** class names its code can instantiate *)
}

type t = {
  ifaces : iface list;
  classes : cls list;
  roots : string list;  (** classes instantiable from the main program *)
}

val recursive_marker : string
(** Opaque tag substituted for cyclic (unbounded recursive) types; see
    {!Idl_type.finite}. The linter reports its presence as CG005. *)

val create : ifaces:iface list -> classes:cls list -> roots:string list -> t
(** Sorts and dedups each table, and replaces any non-finite type in a
    method signature with [Opaque recursive_marker] (conservatively
    non-remotable — a cyclic value cannot be marshaled). *)

val sanitize_type : Idl_type.t -> Idl_type.t

val iface : t -> string -> iface option
val cls : t -> string -> cls option

val encode : t -> string
val decode : string -> t
(** Raises {!Codec.Malformed}. Round-trips with [encode]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
