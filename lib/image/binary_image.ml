type section = { sec_name : string; sec_size : int }

type t = {
  img_name : string;
  imports : string list;
  sections : section list;
  api_refs : (string * string list) list;
  config : Config_record.t option;
  meta : Image_meta.t option;
}

let create ~name ?(imports = [ "ole32.dll"; "kernel32.dll"; "user32.dll" ])
    ?(sections = [ { sec_name = ".text"; sec_size = 65536 }; { sec_name = ".data"; sec_size = 16384 } ])
    ?meta ~api_refs () =
  { img_name = name; imports; sections; api_refs; config = None; meta }

let class_api_refs t cname =
  Option.value ~default:[] (List.assoc_opt cname t.api_refs)

let class_names t = List.map fst t.api_refs

let total_size t =
  List.fold_left (fun acc s -> acc + s.sec_size) 0 t.sections
  + match t.config with None -> 0 | Some c -> String.length (Config_record.encode c)

let magic = "COIGNIMG"

let encode t =
  let w = Codec.writer () in
  Codec.w_str w magic;
  Codec.w_str w t.img_name;
  Codec.w_list w (Codec.w_str w) t.imports;
  Codec.w_list w
    (fun s ->
      Codec.w_str w s.sec_name;
      Codec.w_u32 w s.sec_size)
    t.sections;
  Codec.w_list w
    (fun (cname, apis) ->
      Codec.w_str w cname;
      Codec.w_list w (Codec.w_str w) apis)
    t.api_refs;
  (match t.config with
  | None -> Codec.w_u8 w 0
  | Some c ->
      Codec.w_u8 w 1;
      Codec.w_str w (Config_record.encode c));
  (match t.meta with
  | None -> Codec.w_u8 w 0
  | Some m ->
      Codec.w_u8 w 1;
      Codec.w_str w (Image_meta.encode m));
  Codec.contents w

let decode s =
  let r = Codec.reader s in
  if Codec.r_str r <> magic then raise (Codec.Malformed "bad image magic");
  let img_name = Codec.r_str r in
  let imports = Codec.r_list r Codec.r_str in
  let sections =
    Codec.r_list r (fun r ->
        let sec_name = Codec.r_str r in
        let sec_size = Codec.r_u32 r in
        { sec_name; sec_size })
  in
  let api_refs =
    Codec.r_list r (fun r ->
        let cname = Codec.r_str r in
        let apis = Codec.r_list r Codec.r_str in
        (cname, apis))
  in
  let config =
    match Codec.r_u8 r with
    | 0 -> None
    | 1 -> Some (Config_record.decode (Codec.r_str r))
    | n -> raise (Codec.Malformed (Printf.sprintf "bad config tag %d" n))
  in
  (* Images written before the metadata section existed simply end
     here, so its absence (not just a 0 tag) must decode as None. *)
  let meta =
    if Codec.at_end r then None
    else
      match Codec.r_u8 r with
      | 0 -> None
      | 1 -> Some (Image_meta.decode (Codec.r_str r))
      | n -> raise (Codec.Malformed (Printf.sprintf "bad meta tag %d" n))
  in
  Codec.expect_end r;
  { img_name; imports; sections; api_refs; config; meta }

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

let equal a b =
  a.img_name = b.img_name && a.imports = b.imports && a.sections = b.sections
  && a.api_refs = b.api_refs
  && (match (a.meta, b.meta) with
     | None, None -> true
     | Some x, Some y -> Image_meta.equal x y
     | _ -> false)
  &&
  match (a.config, b.config) with
  | None, None -> true
  | Some x, Some y -> Config_record.equal x y
  | _ -> false

let pp ppf t =
  Format.fprintf ppf "image %s: %d imports, %d sections, %d classes%s" t.img_name
    (List.length t.imports) (List.length t.sections) (List.length t.api_refs)
    ((match t.meta with None -> "" | Some _ -> ", meta")
    ^
    match t.config with
    | None -> ""
    | Some c ->
        ", config "
        ^
        (match Config_record.mode c with
        | Config_record.Off -> "off"
        | Config_record.Profiling -> "profiling"
        | Config_record.Distributed -> "distributed"))
