open Coign_idl

type iface = { if_name : string; if_methods : Idl_type.method_sig list }

type cls = {
  cl_name : string;
  cl_provides : string list;
  cl_creates : string list;
}

type t = { ifaces : iface list; classes : cls list; roots : string list }

let recursive_marker = "<recursive>"

(* A cyclic type (built with [let rec]) would send both the marshaler
   and the codec below into infinite recursion, so it is replaced
   wholesale by an opaque marker before it enters the metadata. The
   marker is non-remotable, which is the conservative reading, and the
   linter reports it as CG005. *)
let rec sanitize_type ty =
  if not (Idl_type.finite ty) then Idl_type.Opaque recursive_marker
  else
    match ty with
    | Idl_type.Array u -> Idl_type.Array (sanitize_type u)
    | Idl_type.Ptr u -> Idl_type.Ptr (sanitize_type u)
    | Idl_type.Struct fields ->
        Idl_type.Struct (List.map (fun (n, u) -> (n, sanitize_type u)) fields)
    | t -> t

let sanitize_method (m : Idl_type.method_sig) =
  {
    m with
    Idl_type.ret = sanitize_type m.Idl_type.ret;
    params =
      List.map
        (fun p -> { p with Idl_type.pty = sanitize_type p.Idl_type.pty })
        m.Idl_type.params;
  }

let create ~ifaces ~classes ~roots =
  let by_name i = i.if_name in
  let ifaces =
    List.sort_uniq (fun a b -> compare (by_name a) (by_name b)) ifaces
    |> List.map (fun i -> { i with if_methods = List.map sanitize_method i.if_methods })
  in
  let classes = List.sort_uniq (fun a b -> compare a.cl_name b.cl_name) classes in
  { ifaces; classes; roots = List.sort_uniq compare roots }

let iface t name = List.find_opt (fun i -> i.if_name = name) t.ifaces
let cls t name = List.find_opt (fun c -> c.cl_name = name) t.classes

(* --- codec ------------------------------------------------------------ *)

let rec w_type w ty =
  match ty with
  | Idl_type.Void -> Codec.w_u8 w 0
  | Idl_type.Int32 -> Codec.w_u8 w 1
  | Idl_type.Int64 -> Codec.w_u8 w 2
  | Idl_type.Double -> Codec.w_u8 w 3
  | Idl_type.Bool -> Codec.w_u8 w 4
  | Idl_type.Str -> Codec.w_u8 w 5
  | Idl_type.Blob -> Codec.w_u8 w 6
  | Idl_type.Array u ->
      Codec.w_u8 w 7;
      w_type w u
  | Idl_type.Struct fields ->
      Codec.w_u8 w 8;
      Codec.w_list w
        (fun (n, u) ->
          Codec.w_str w n;
          w_type w u)
        fields
  | Idl_type.Ptr u ->
      Codec.w_u8 w 9;
      w_type w u
  | Idl_type.Iface n ->
      Codec.w_u8 w 10;
      Codec.w_str w n
  | Idl_type.Opaque n ->
      Codec.w_u8 w 11;
      Codec.w_str w n

let rec r_type r =
  match Codec.r_u8 r with
  | 0 -> Idl_type.Void
  | 1 -> Idl_type.Int32
  | 2 -> Idl_type.Int64
  | 3 -> Idl_type.Double
  | 4 -> Idl_type.Bool
  | 5 -> Idl_type.Str
  | 6 -> Idl_type.Blob
  | 7 -> Idl_type.Array (r_type r)
  | 8 ->
      Idl_type.Struct
        (Codec.r_list r (fun r ->
             let n = Codec.r_str r in
             (n, r_type r)))
  | 9 -> Idl_type.Ptr (r_type r)
  | 10 -> Idl_type.Iface (Codec.r_str r)
  | 11 -> Idl_type.Opaque (Codec.r_str r)
  | n -> raise (Codec.Malformed (Printf.sprintf "bad idl type tag %d" n))

let w_dir w = function
  | Idl_type.In -> Codec.w_u8 w 0
  | Idl_type.Out -> Codec.w_u8 w 1
  | Idl_type.In_out -> Codec.w_u8 w 2

let r_dir r =
  match Codec.r_u8 r with
  | 0 -> Idl_type.In
  | 1 -> Idl_type.Out
  | 2 -> Idl_type.In_out
  | n -> raise (Codec.Malformed (Printf.sprintf "bad direction tag %d" n))

let w_method w (m : Idl_type.method_sig) =
  Codec.w_str w m.Idl_type.mname;
  Codec.w_list w
    (fun (p : Idl_type.param) ->
      Codec.w_str w p.Idl_type.pname;
      w_type w p.Idl_type.pty;
      w_dir w p.Idl_type.pdir)
    m.Idl_type.params;
  w_type w m.Idl_type.ret

let r_method r =
  let mname = Codec.r_str r in
  let params =
    Codec.r_list r (fun r ->
        let pname = Codec.r_str r in
        let pty = r_type r in
        let pdir = r_dir r in
        { Idl_type.pname; pty; pdir })
  in
  let ret = r_type r in
  { Idl_type.mname; params; ret }

let encode t =
  let w = Codec.writer () in
  Codec.w_list w
    (fun i ->
      Codec.w_str w i.if_name;
      Codec.w_list w (w_method w) i.if_methods)
    t.ifaces;
  Codec.w_list w
    (fun c ->
      Codec.w_str w c.cl_name;
      Codec.w_list w (Codec.w_str w) c.cl_provides;
      Codec.w_list w (Codec.w_str w) c.cl_creates)
    t.classes;
  Codec.w_list w (Codec.w_str w) t.roots;
  Codec.contents w

let decode s =
  let r = Codec.reader s in
  let ifaces =
    Codec.r_list r (fun r ->
        let if_name = Codec.r_str r in
        let if_methods = Codec.r_list r r_method in
        { if_name; if_methods })
  in
  let classes =
    Codec.r_list r (fun r ->
        let cl_name = Codec.r_str r in
        let cl_provides = Codec.r_list r Codec.r_str in
        let cl_creates = Codec.r_list r Codec.r_str in
        { cl_name; cl_provides; cl_creates })
  in
  let roots = Codec.r_list r (Codec.r_str) in
  Codec.expect_end r;
  { ifaces; classes; roots }

let equal (a : t) (b : t) = a = b

let pp ppf t =
  Format.fprintf ppf "meta: %d interfaces, %d classes, %d roots"
    (List.length t.ifaces) (List.length t.classes) (List.length t.roots)
