(** The application "binary" model.

    Stands in for a Win32 PE executable plus its DLLs: a named image
    with an ordered DLL import table, code/data sections, a per-component
    table of referenced system APIs (what Coign's static analysis scans
    to derive location constraints), and an optional appended
    configuration record. The whole image serializes to bytes so the
    CLI tools can pass applications through instrument → profile →
    analyze stages as files, exactly like the paper's toolchain. *)

type section = { sec_name : string; sec_size : int }

type t = {
  img_name : string;
  imports : string list;          (** DLL names, load order *)
  sections : section list;
  api_refs : (string * string list) list;
      (** component class name -> system APIs its code references *)
  config : Config_record.t option;
  meta : Image_meta.t option;
      (** static interface metadata for lint / flow analysis; [None] on
          images built before the metadata section existed *)
}

val create :
  name:string -> ?imports:string list -> ?sections:section list ->
  ?meta:Image_meta.t ->
  api_refs:(string * string list) list -> unit -> t

val class_api_refs : t -> string -> string list
(** APIs referenced by a class; empty when unknown. *)

val class_names : t -> string list

val total_size : t -> int
(** Sum of section sizes plus the encoded config record. *)

val encode : t -> string
val decode : string -> t
(** Raises {!Codec.Malformed}. Round-trips with [encode]. *)

val save : t -> string -> unit
(** Write the encoded image to a file path. *)

val load : string -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
