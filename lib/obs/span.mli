(** One completed span of a causal trace.

    A span covers one intercepted operation — an interface call or a
    component instantiation — from entry to return, timed on the
    deterministic simulation clock (virtual microseconds of
    communication plus charged compute, never wall time). Spans nest
    exactly as the RTE's shadow stack nests, so [sp_parent] reconstructs
    the call tree the classifiers walk. *)

type t = {
  sp_trace : int;           (** trace (run) identifier *)
  sp_id : int;              (** dense, ascending per trace; creation order *)
  sp_parent : int option;   (** enclosing span, [None] at the root *)
  sp_name : string;         (** ["IFace.method"] or the instantiated class *)
  sp_cat : string;          (** ["call"] or ["create"] *)
  sp_start_us : float;      (** sim-clock entry time *)
  sp_dur_us : float;        (** sim-clock time to return (>= 0) *)
  sp_args : (string * Coign_util.Jsonu.t) list;  (** extra attributes *)
}

val chrome_event : t -> Coign_util.Jsonu.t
(** The span as one Chrome [trace_event] complete event (["ph": "X"],
    timestamps in microseconds) — the element format of
    about://tracing / Perfetto JSON. *)

val pp_line : Format.formatter -> t -> unit
(** One span per line, tab-separated:
    [trace  id  parent  cat  name  start_us  dur_us  k=v...], with
    ["-"] for a missing parent and times to 3 decimals (nanosecond
    resolution — exact for the sim clock's microsecond arithmetic). *)
