type kind = Call | Create

type obs = {
  ob_at_us : float;
  ob_kind : kind;
  ob_caller : int;
  ob_callee : int;
  ob_bytes : int;
}

type sink = { tap_name : string; push : obs -> unit }

let null_sink = { tap_name = "null"; push = ignore }

let collector () =
  let acc = ref [] in
  ( { tap_name = "collector"; push = (fun o -> acc := o :: !acc) },
    fun () -> List.rev !acc )

let tee sinks =
  { tap_name = "tee"; push = (fun o -> List.iter (fun s -> s.push o) sinks) }

type t = {
  t_sink : sink;
  t_every : int;
  t_rng : Coign_util.Prng.t;
  mutable t_offered : int;
  mutable t_sampled : int;
}

let create ?(sample_every = 1) ?(seed = 0x7A9L) sink =
  if sample_every < 1 then
    invalid_arg "Tap.create: sample_every must be >= 1";
  {
    t_sink = sink;
    t_every = sample_every;
    t_rng = Coign_util.Prng.create seed;
    t_offered = 0;
    t_sampled = 0;
  }

let accept t =
  t.t_offered <- t.t_offered + 1;
  (* Bernoulli 1-in-k from the tap's own seeded stream: which calls are
     sampled is deterministic for a given seed and offer sequence, and
     the decision draws from no PRNG shared with the run itself. *)
  t.t_every = 1 || Coign_util.Prng.int t.t_rng t.t_every = 0

let emit t obs =
  t.t_sampled <- t.t_sampled + 1;
  t.t_sink.push obs

let offer t ~at_us ~kind ~caller ~callee ~bytes =
  if accept t then
    emit t
      { ob_at_us = at_us; ob_kind = kind; ob_caller = caller; ob_callee = callee; ob_bytes = bytes }

let offered t = t.t_offered
let sampled t = t.t_sampled
let sink_name t = t.t_sink.tap_name

let kind_name = function Call -> "call" | Create -> "create"
