(** Span tracing — the causal complement to {!Coign_core.Logger}.

    Where the information logger streams flat events, a tracer records
    {e spans}: bracketed intervals on the simulation clock whose
    parent/child structure mirrors the RTE's shadow stack. Sinks follow
    the logger's design exactly — replaceable, composable records with
    a null default — so tracing is zero-cost unless a run opts in: the
    RTE takes [?tracer] and, when absent, executes the same
    instructions it always did.

    Because spans are timed on the deterministic sim clock (virtual
    communication time plus charged compute), a trace of a seeded run
    is byte-reproducible and golden-testable, yet still opens in real
    trace viewers through {!chrome_json}. *)

(** {1 Sinks} *)

type sink = { sink_name : string; emit : Span.t -> unit }
(** Receives each span when it closes (children before parents,
    emission order = close order). *)

val null_sink : sink
(** Ignores everything. *)

val collector : unit -> sink * (unit -> Span.t list)
(** In-memory trace; the second component returns spans in emission
    (close) order. *)

val tee : sink list -> sink
(** Fan each span out to several sinks, in list order. *)

val to_channel : out_channel -> sink
(** Stream spans as {!Span.pp_line} text lines. *)

(** {1 Tracers} *)

type t
(** Allocates span ids and tracks the stack of open spans for one
    trace. Single-domain, like the shadow stack it mirrors. *)

val create : ?trace_id:int -> sink -> t
(** A fresh tracer; span ids start at 0. [trace_id] defaults to 1. *)

val trace_id : t -> int

val open_span : t -> name:string -> cat:string -> at_us:float -> int
(** Start a span at sim-clock time [at_us]; its parent is the
    currently-innermost open span. Returns the span id. *)

val close_span : t -> ?args:(string * Coign_util.Jsonu.t) list -> int -> at_us:float -> unit
(** Close the innermost open span (which must be [id] — spans close in
    LIFO order like the shadow stack; anything else raises
    [Invalid_argument]) and emit it. *)

val with_span :
  t ->
  name:string ->
  cat:string ->
  clock:(unit -> float) ->
  ?args:((unit, exn) result -> (string * Coign_util.Jsonu.t) list) ->
  (unit -> 'a) ->
  'a
(** Bracket [f] in a span, reading entry/exit times from [clock]. If
    [f] raises, the span still closes, carrying an ["error"] attribute,
    and the exception is re-raised. *)

val depth : t -> int
(** Open spans. *)

val span_count : t -> int
(** Spans emitted so far. *)

val chrome_json : Span.t list -> string
(** The spans as a Chrome [trace_event] JSON document
    ([{"traceEvents": [...], ...}]) — loadable in about://tracing and
    Perfetto. *)
