(** Streaming ICC sample tap (paper §6).

    The offline pipeline observes inter-component communication once,
    during profiling; a continuously re-optimizing system needs the
    same observations as a stream out of the running RTE. A tap is a
    sampling valve between the interception layer and any consumer: the
    RTE offers every intercepted call and instantiation, the tap keeps a
    deterministic 1-in-k subsample, and pushes the survivors into a
    caller-supplied sink.

    Like the {!Trace} sinks, everything here is opt-in and inert by
    default: the instrumented code paths take the tap as an option and
    skip all bookkeeping when it is absent, so a detached run is
    bit-identical to an untapped one. Sampling decisions come from the
    tap's own seeded PRNG stream — attaching a tap never perturbs the
    run's jitter, retry, or fault draws. *)

type kind = Call | Create

type obs = {
  ob_at_us : float;  (** virtual time of the observation (sim clock) *)
  ob_kind : kind;
  ob_caller : int;  (** caller classification; [-1] for the main program *)
  ob_callee : int;  (** callee classification *)
  ob_bytes : int;  (** request + reply bytes when measured, else [0] *)
}

type sink = { tap_name : string; push : obs -> unit }

val null_sink : sink

val collector : unit -> sink * (unit -> obs list)
(** An in-memory sink and a function returning the observations pushed
    so far, oldest first. *)

val tee : sink list -> sink
(** Push every observation to each sink, in list order. *)

type t

val create : ?sample_every:int -> ?seed:int64 -> sink -> t
(** A tap keeping on average one observation in [sample_every]
    (default 1: keep everything). Raises [Invalid_argument] when
    [sample_every < 1]. *)

val offer : t -> at_us:float -> kind:kind -> caller:int -> callee:int -> bytes:int -> unit
(** Offer one observation; the tap counts it and pushes it to the sink
    iff the sampler selects it. Equivalent to {!accept} followed (on
    selection) by {!emit}. *)

val accept : t -> bool
(** Count one offered observation and draw the sampling decision for
    it — split out from {!offer} so a caller can defer expensive
    measurement (message-size walks) to the selected observations
    only. A [true] result should be followed by exactly one {!emit}. *)

val emit : t -> obs -> unit
(** Push a fully-measured observation that {!accept} selected. *)

val offered : t -> int
(** Observations offered so far. *)

val sampled : t -> int
(** Observations that reached the sink. *)

val sink_name : t -> string
val kind_name : kind -> string
