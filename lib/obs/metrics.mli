(** The metrics registry: named counters, gauges, and histograms.

    The paper's evaluation (§5) is a set of one-shot measurements; a
    long-running partitioned system — and the adaptive repartitioning
    of §6 — needs the same numbers continuously. This registry is the
    surface those numbers flow through: the RTE, the component factory,
    and the analysis engine register instruments against a caller-owned
    registry and update them as they run; the registry renders as
    Prometheus-style text exposition or JSON.

    Histograms reuse {!Coign_util.Exp_bucket}, the paper's §3.3
    exponential size buckets, so a latency or message-size distribution
    costs O(log max) memory regardless of run length — the same
    argument that made communication profiles execution-length
    independent.

    Instruments are identified by (name, label set): registering the
    same identity twice returns the existing instrument, so repeated
    runs against one registry accumulate. Everything here is zero-cost
    to code that does not pass a registry — the instrumented subsystems
    take [?metrics] and skip all bookkeeping when it is absent. *)

type registry
type counter
type gauge
type histogram

val registry : unit -> registry

val counter :
  registry -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Monotonically increasing value. Raises [Invalid_argument] if [name]
    is not a valid metric name ([[a-zA-Z_][a-zA-Z0-9_]*]) or is already
    registered with a different type. *)

val gauge : registry -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  registry -> ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Exponentially bucketed distribution of non-negative integers
    (bytes, rounded microseconds). *)

val inc : ?by:float -> counter -> unit
(** Add [by] (default 1); negative [by] raises [Invalid_argument]. *)

val inc_int : counter -> int -> unit
val counter_value : counter -> float

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record one observation (clamped at 0). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val escape_label_value : string -> string
(** Prometheus text-format escaping for a quoted label value: exactly
    backslash, double-quote, and line-feed gain a backslash; every
    other byte — tabs included — passes through raw. The format is not
    JSON; JSON escaping would corrupt values a scraper reads back. *)

val escape_help : string -> string
(** Escaping for [# HELP] text, which is unquoted: backslash and
    line-feed only — a double-quote stays raw. *)

val prometheus : registry -> string
(** Text exposition: [# HELP] / [# TYPE] headers and one
    [name{labels} value] line per series; histograms render cumulative
    [_bucket{le="..."}] lines over the {!Coign_util.Exp_bucket} bounds
    plus [_sum] and [_count]. Families are sorted by name and series by
    label set, so equal registries expose byte-identically. *)

val json : registry -> Coign_util.Jsonu.t
(** The registry as a JSON object keyed by family name, same ordering
    guarantees as {!prometheus}. *)

val to_json_string : registry -> string
