open Coign_util

type value =
  | V_counter of float ref
  | V_gauge of float ref
  | V_histogram of Exp_bucket.t

type series = { se_labels : (string * string) list; se_value : value }

type family = {
  fa_name : string;
  fa_help : string;
  fa_kind : string;  (* "counter" | "gauge" | "histogram" *)
  mutable fa_series : series list;  (* registration order *)
}

type registry = {
  mutable families : family list;  (* registration order *)
  by_name : (string, family) Hashtbl.t;
}

type counter = float ref
type gauge = float ref
type histogram = Exp_bucket.t

let registry () = { families = []; by_name = Hashtbl.create 32 }

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let family reg ~kind ~help name =
  match Hashtbl.find_opt reg.by_name name with
  | Some fa ->
      if fa.fa_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name fa.fa_kind);
      fa
  | None ->
      if not (valid_name name) then invalid_arg ("Metrics: invalid metric name " ^ name);
      let fa = { fa_name = name; fa_help = help; fa_kind = kind; fa_series = [] } in
      reg.families <- fa :: reg.families;
      Hashtbl.add reg.by_name name fa;
      fa

(* Registering the same (name, labels) twice returns the existing
   instrument, so successive RTE installs against one registry
   accumulate instead of shadowing. *)
let series fa ~labels ~make =
  let labels = List.sort compare labels in
  match List.find_opt (fun se -> se.se_labels = labels) fa.fa_series with
  | Some se -> se.se_value
  | None ->
      let v = make () in
      fa.fa_series <- fa.fa_series @ [ { se_labels = labels; se_value = v } ];
      v

let counter reg ?(help = "") ?(labels = []) name =
  match
    series (family reg ~kind:"counter" ~help name) ~labels ~make:(fun () ->
        V_counter (ref 0.))
  with
  | V_counter r -> r
  | _ -> assert false

let gauge reg ?(help = "") ?(labels = []) name =
  match
    series (family reg ~kind:"gauge" ~help name) ~labels ~make:(fun () -> V_gauge (ref 0.))
  with
  | V_gauge r -> r
  | _ -> assert false

let histogram reg ?(help = "") ?(labels = []) name =
  match
    series (family reg ~kind:"histogram" ~help name) ~labels ~make:(fun () ->
        V_histogram (Exp_bucket.create ()))
  with
  | V_histogram h -> h
  | _ -> assert false

let inc ?(by = 1.) c =
  if by < 0. then invalid_arg "Metrics.inc: counters only go up";
  c := !c +. by

let inc_int c by = inc ~by:(float_of_int by) c
let counter_value c = !c

let set g v = g := v
let gauge_value g = !g

let observe h v = Exp_bucket.add h ~bytes:(max 0 v)
let histogram_count = Exp_bucket.message_count
let histogram_sum = Exp_bucket.total_bytes

(* --- exposition ---------------------------------------------------- *)

(* The Prometheus text format is not JSON: label values escape exactly
   backslash, double-quote, and line-feed; HELP text escapes backslash
   and line-feed (it is not quoted, so quotes stay raw). Anything else
   — tabs included — passes through as-is. *)
let prometheus_escape ~quote v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' when quote -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_label_value = prometheus_escape ~quote:true
let escape_help = prometheus_escape ~quote:false

let label_body labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)

let labeled name labels =
  if labels = [] then name else Printf.sprintf "%s{%s}" name (label_body labels)

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let sorted_families reg =
  List.sort (fun a b -> compare a.fa_name b.fa_name) reg.families

let prometheus reg =
  let buf = Buffer.create 1024 in
  let line name labels value =
    Buffer.add_string buf (Printf.sprintf "%s %s\n" (labeled name labels) value)
  in
  List.iter
    (fun fa ->
      if fa.fa_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" fa.fa_name (escape_help fa.fa_help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fa.fa_name fa.fa_kind);
      List.iter
        (fun se ->
          match se.se_value with
          | V_counter r | V_gauge r -> line fa.fa_name se.se_labels (number !r)
          | V_histogram h ->
              let cumulative = ref 0 in
              Exp_bucket.fold
                (fun ~index ~count ~bytes:_ () ->
                  cumulative := !cumulative + count;
                  let _, hi = Exp_bucket.bucket_bounds index in
                  line (fa.fa_name ^ "_bucket")
                    (se.se_labels @ [ ("le", string_of_int hi) ])
                    (string_of_int !cumulative))
                h ();
              line (fa.fa_name ^ "_bucket")
                (se.se_labels @ [ ("le", "+Inf") ])
                (string_of_int (Exp_bucket.message_count h));
              line (fa.fa_name ^ "_sum") se.se_labels
                (string_of_int (Exp_bucket.total_bytes h));
              line (fa.fa_name ^ "_count") se.se_labels
                (string_of_int (Exp_bucket.message_count h)))
        fa.fa_series)
    (sorted_families reg);
  Buffer.contents buf

let json reg =
  let series_json se =
    let payload =
      match se.se_value with
      | V_counter r | V_gauge r -> [ ("value", Jsonu.Float !r) ]
      | V_histogram h ->
          let buckets =
            List.rev
              (Exp_bucket.fold
                 (fun ~index ~count ~bytes acc ->
                   let lo, hi = Exp_bucket.bucket_bounds index in
                   Jsonu.Obj
                     [
                       ("lo", Jsonu.Int lo); ("hi", Jsonu.Int hi);
                       ("count", Jsonu.Int count); ("sum", Jsonu.Int bytes);
                     ]
                   :: acc)
                 h [])
          in
          [
            ("count", Jsonu.Int (Exp_bucket.message_count h));
            ("sum", Jsonu.Int (Exp_bucket.total_bytes h));
            ("buckets", Jsonu.Arr buckets);
          ]
    in
    Jsonu.Obj
      ((if se.se_labels = [] then []
        else
          [ ("labels", Jsonu.Obj (List.map (fun (k, v) -> (k, Jsonu.Str v)) se.se_labels)) ])
      @ payload)
  in
  Jsonu.Obj
    (List.map
       (fun fa ->
         ( fa.fa_name,
           Jsonu.Obj
             [
               ("type", Jsonu.Str fa.fa_kind);
               ("help", Jsonu.Str fa.fa_help);
               ("series", Jsonu.Arr (List.map series_json fa.fa_series));
             ] ))
       (sorted_families reg))

let to_json_string reg = Jsonu.to_string (json reg)
