open Coign_util

type sink = { sink_name : string; emit : Span.t -> unit }

let null_sink = { sink_name = "null"; emit = (fun _ -> ()) }

let collector () =
  let spans = ref [] in
  ( { sink_name = "collector"; emit = (fun sp -> spans := sp :: !spans) },
    fun () -> List.rev !spans )

let tee sinks =
  {
    sink_name = "tee(" ^ String.concat "," (List.map (fun s -> s.sink_name) sinks) ^ ")";
    emit = (fun sp -> List.iter (fun s -> s.emit sp) sinks);
  }

let to_channel oc =
  {
    sink_name = "channel";
    emit = (fun sp -> output_string oc (Format.asprintf "%a\n" Span.pp_line sp));
  }

type open_span = {
  os_id : int;
  os_parent : int option;
  os_name : string;
  os_cat : string;
  os_start_us : float;
}

type t = {
  tr_id : int;
  tr_sink : sink;
  mutable tr_next : int;       (* next span id *)
  mutable tr_open : open_span list;  (* innermost first *)
  mutable tr_emitted : int;
}

let create ?(trace_id = 1) sink = { tr_id = trace_id; tr_sink = sink; tr_next = 0; tr_open = []; tr_emitted = 0 }

let trace_id t = t.tr_id
let depth t = List.length t.tr_open
let span_count t = t.tr_emitted

let open_span t ~name ~cat ~at_us =
  let id = t.tr_next in
  t.tr_next <- id + 1;
  let parent = match t.tr_open with [] -> None | os :: _ -> Some os.os_id in
  t.tr_open <-
    { os_id = id; os_parent = parent; os_name = name; os_cat = cat; os_start_us = at_us }
    :: t.tr_open;
  id

let close_span t ?(args = []) id ~at_us =
  match t.tr_open with
  | os :: rest when os.os_id = id ->
      t.tr_open <- rest;
      t.tr_emitted <- t.tr_emitted + 1;
      t.tr_sink.emit
        {
          Span.sp_trace = t.tr_id;
          sp_id = os.os_id;
          sp_parent = os.os_parent;
          sp_name = os.os_name;
          sp_cat = os.os_cat;
          sp_start_us = os.os_start_us;
          sp_dur_us = Float.max 0. (at_us -. os.os_start_us);
          sp_args = args;
        }
  | _ -> invalid_arg "Trace.close_span: unbalanced span (not the innermost open span)"

let with_span t ~name ~cat ~clock ?(args = fun _ -> []) f =
  let id = open_span t ~name ~cat ~at_us:(clock ()) in
  match f () with
  | v ->
      close_span t ~args:(args (Ok ())) id ~at_us:(clock ());
      v
  | exception e ->
      close_span t
        ~args:(("error", Jsonu.Str (Printexc.to_string e)) :: args (Error e))
        id ~at_us:(clock ());
      raise e

let chrome_json spans =
  Jsonu.to_string
    (Jsonu.Obj
       [
         ("traceEvents", Jsonu.Arr (List.map Span.chrome_event spans));
         ("displayTimeUnit", Jsonu.Str "ms");
       ])
