open Coign_util

type phase = {
  ph_name : string;
  ph_count : int;
  ph_total_s : float;
  ph_max_s : float;
}

type cell = { mutable c_count : int; mutable c_total_s : float; mutable c_max_s : float }

type t = {
  clock : unit -> float;
  lock : Mutex.t;
  mutable order : string list;  (* reversed first-use order *)
  cells : (string, cell) Hashtbl.t;
}

let create ?(clock = Unix.gettimeofday) () =
  { clock; lock = Mutex.create (); order = []; cells = Hashtbl.create 16 }

let record t name ~seconds =
  let seconds = Float.max 0. seconds in
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.cells name with
  | Some c ->
      c.c_count <- c.c_count + 1;
      c.c_total_s <- c.c_total_s +. seconds;
      if seconds > c.c_max_s then c.c_max_s <- seconds
  | None ->
      Hashtbl.add t.cells name { c_count = 1; c_total_s = seconds; c_max_s = seconds };
      t.order <- name :: t.order);
  Mutex.unlock t.lock

let time t name f =
  let t0 = t.clock () in
  match f () with
  | v ->
      record t name ~seconds:(t.clock () -. t0);
      v
  | exception e ->
      record t name ~seconds:(t.clock () -. t0);
      raise e

let phases t =
  Mutex.lock t.lock;
  let out =
    List.rev_map
      (fun name ->
        let c = Hashtbl.find t.cells name in
        { ph_name = name; ph_count = c.c_count; ph_total_s = c.c_total_s; ph_max_s = c.c_max_s })
      t.order
  in
  Mutex.unlock t.lock;
  out

let total_s t = List.fold_left (fun acc ph -> acc +. ph.ph_total_s) 0. (phases t)

let absorb t other =
  List.iter
    (fun ph ->
      (* Replay the other profiler's aggregate as count records so max
         survives; total is exact, per-record averages are not needed. *)
      Mutex.lock t.lock;
      (match Hashtbl.find_opt t.cells ph.ph_name with
      | Some c ->
          c.c_count <- c.c_count + ph.ph_count;
          c.c_total_s <- c.c_total_s +. ph.ph_total_s;
          if ph.ph_max_s > c.c_max_s then c.c_max_s <- ph.ph_max_s
      | None ->
          Hashtbl.add t.cells ph.ph_name
            { c_count = ph.ph_count; c_total_s = ph.ph_total_s; c_max_s = ph.ph_max_s };
          t.order <- ph.ph_name :: t.order);
      Mutex.unlock t.lock)
    (phases other)

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.cells;
  t.order <- [];
  Mutex.unlock t.lock

let pp_text ppf t =
  let ps = phases t in
  let total = List.fold_left (fun acc ph -> acc +. ph.ph_total_s) 0. ps in
  Format.fprintf ppf "%-24s  %7s  %12s  %12s  %6s@," "phase" "count" "total (ms)" "max (ms)"
    "share";
  Format.fprintf ppf "%s@," (String.make 72 '-');
  List.iter
    (fun ph ->
      Format.fprintf ppf "%-24s  %7d  %12.3f  %12.3f  %5.1f%%@," ph.ph_name ph.ph_count
        (ph.ph_total_s *. 1e3) (ph.ph_max_s *. 1e3)
        (if total > 0. then 100. *. ph.ph_total_s /. total else 0.))
    ps;
  Format.fprintf ppf "%-24s  %7s  %12.3f@," "total" "" (total *. 1e3)

let json t =
  Jsonu.Arr
    (List.map
       (fun ph ->
         Jsonu.Obj
           [
             ("phase", Jsonu.Str ph.ph_name);
             ("count", Jsonu.Int ph.ph_count);
             ("total_s", Jsonu.Float ph.ph_total_s);
             ("max_s", Jsonu.Float ph.ph_max_s);
           ])
       (phases t))
