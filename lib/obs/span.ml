open Coign_util

type t = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_cat : string;
  sp_start_us : float;
  sp_dur_us : float;
  sp_args : (string * Jsonu.t) list;
}

let chrome_event sp =
  let args =
    ("span_id", Jsonu.Int sp.sp_id)
    :: (match sp.sp_parent with
       | Some p -> [ ("parent_id", Jsonu.Int p) ]
       | None -> [])
    @ sp.sp_args
  in
  Jsonu.Obj
    [
      ("name", Jsonu.Str sp.sp_name);
      ("cat", Jsonu.Str sp.sp_cat);
      ("ph", Jsonu.Str "X");
      ("ts", Jsonu.Float sp.sp_start_us);
      ("dur", Jsonu.Float sp.sp_dur_us);
      ("pid", Jsonu.Int 1);
      ("tid", Jsonu.Int sp.sp_trace);
      ("args", Jsonu.Obj args);
    ]

(* One span per line, tab-separated; the textual twin of the Chrome
   export and the format [coign trace --format spans] golden-tests. *)
let pp_line ppf sp =
  Format.fprintf ppf "%d\t%d\t%s\t%s\t%s\t%.3f\t%.3f%s" sp.sp_trace sp.sp_id
    (match sp.sp_parent with Some p -> string_of_int p | None -> "-")
    sp.sp_cat sp.sp_name sp.sp_start_us sp.sp_dur_us
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf "\t%s=%s" k (Jsonu.to_string v))
          sp.sp_args))
