(** Pipeline self-profiling: named phase timers.

    The partitioning pipeline's own cost — profile load, ICC-graph
    build, pricing, cut, validation — is what bounds how often an
    adaptive system can re-partition, so it must be measurable per run
    and aggregable across {!Coign_sim.Experiment.sweep} and
    {!Coign_sim.Faultsim} grids. A profiler accumulates (count, total,
    max) per phase name; the instrumented stages take [?profiler] and
    cost nothing when it is absent.

    Unlike spans ({!Trace}), phase timers read {e wall-clock} time by
    default — they measure the analysis machinery itself, not the
    simulated application — so their values are not golden-testable;
    inject [clock] for deterministic tests.

    Recording is mutex-protected, so one profiler can aggregate phases
    from a {!Coign_util.Parallel} domain pool; phase order in reports
    is first-use order, deterministic for sequential pipelines. *)

type phase = {
  ph_name : string;
  ph_count : int;     (** times the phase ran *)
  ph_total_s : float; (** accumulated seconds *)
  ph_max_s : float;   (** slowest single run *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk under a phase timer. If it raises, the time still
    records and the exception propagates. *)

val record : t -> string -> seconds:float -> unit
(** Record an externally measured duration (clamped at 0). *)

val phases : t -> phase list
(** Snapshot in first-use order. *)

val total_s : t -> float

val absorb : t -> t -> unit
(** [absorb t other] folds [other]'s phases into [t] (counts and totals
    add, maxima take the max). [other] is unchanged. *)

val reset : t -> unit

val pp_text : Format.formatter -> t -> unit
(** A small table (count / total ms / max ms / share); emit inside a
    vertical box. *)

val json : t -> Coign_util.Jsonu.t
