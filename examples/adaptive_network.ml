(* Repartitioning for changing networks (paper §1, §4.4).

   "Changes in underlying network, from ISDN to 100BaseT to ATM to SAN,
   strain static distributions as bandwidth-to-latency tradeoffs change
   by more than an order of magnitude."

   One profile of the mixed-document Octarine scenario is re-analyzed
   against each network model: the same application, the same usage,
   a different optimal distribution each time — something a manual,
   static partition cannot do.

   Run: dune exec examples/adaptive_network.exe *)

open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps

let () =
  print_endline "Coign across networks: one profile, many distributions";
  print_endline "======================================================";
  let app = Octarine.app in
  let sc = App.scenario app "o_oldbth" in
  (* Profile once. *)
  let image = Adps.instrument app.App.app_image in
  let image, stats = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  Printf.printf "profiled %s once: %d instances, %d calls\n\n" sc.App.sc_id
    stats.Adps.ps_instances stats.Adps.ps_calls;
  (* Stage 1 of the analysis runs once: the abstract ICC graph and the
     constraint edges are network-independent. Each network below only
     pays the pricing/cut stage on the shared session. *)
  let session = Adps.analysis_session image in
  Printf.printf "%-18s  %22s  %18s  %12s\n" "network" "server classifications" "predicted comm (s)"
    "measured (s)";
  print_endline (String.make 78 '-');
  List.iter
    (fun network ->
      (* Re-run only the pricing/cut stage against this network's
         profile — neither the application nor the abstract graph is
         rebuilt. *)
      let net = Net_profiler.profile (Prng.create 5L) network in
      let image, dist = Adps.analyze_with ~session ~image ~net () in
      let es = Adps.execute ~image ~registry:app.App.app_registry ~network sc.App.sc_run in
      Printf.printf "%-18s  %22d  %18.3f  %12.3f\n" network.Network.net_name
        dist.Analysis.server_count
        (dist.Analysis.predicted_comm_us /. 1e6)
        (es.Adps.es_comm_us /. 1e6))
    Network.presets;
  print_newline ();
  print_endline
    "Expected shape: communication time falls monotonically as the network\n\
     improves, and the partition itself shifts — chatty clusters that must\n\
     consolidate on ISDN can spread out on a SAN. In the limit, Coign could\n\
     re-cut the graph at application startup for whatever network it finds."
