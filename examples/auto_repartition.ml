(* Fully automatic distribution optimization (paper §6).

   "In the future, Coign could automatically decide when usage differs
   significantly from profiled scenarios and silently enable profiling
   to re-optimize the distribution."

   This example closes that loop end to end:

   1. Octarine is profiled on text documents and distributed for them.
   2. The user's behaviour changes: they start working with large
      tables. The lightweight distributed runtime's message counters
      notice the usage signature no longer matches the profile.
   3. Coign silently re-profiles the new usage, re-cuts the graph, and
      installs the new distribution — cutting communication time that
      the stale distribution was leaving on the table.

   Run: dune exec examples/auto_repartition.exe *)

open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps

let network = Network.ethernet_10

let run_distributed image (app : App.t) (sc : App.scenario) =
  (* One "day" of usage under the installed distribution; returns the
     stats and the runtime's lightweight message counters. *)
  let classifier, distribution = Option.get (Adps.load_distribution image) in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte =
    Rte.install_distributed ~classifier
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_classification distribution;
          dc_network = network;
          dc_jitter = 0.015;
          dc_seed = 0xDA7L;
          dc_faults = None;
          dc_retry = Fault.default_retry;
          dc_resilience = None;
          dc_fleet = None;
          dc_watch = None;
        }
      ctx
  in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  (Rte.comm_us rte /. 1e6, Drift.of_counts (Rte.call_counts rte))

let profile_and_cut (app : App.t) (sc : App.scenario) =
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  (* The session (abstract graph + constraint edges) belongs to the new
     profile; a production repartitioner would keep it and re-cut
     whenever the network profile moves, without re-deriving stage 1. *)
  let session = Adps.analysis_session image in
  let net = Net_profiler.profile (Prng.create 21L) network in
  let image, dist = Adps.analyze_with ~session ~image ~net () in
  (image, dist)

let () =
  print_endline "Automatic re-optimization when usage drifts (paper section 6)";
  print_endline "==============================================================";
  let app = Octarine.app in
  let text_work = App.scenario app "o_oldwp0" in
  let table_work = App.scenario app "o_oldtb3" in

  (* Day 0: train on the user's current (text) usage. *)
  let image, dist = profile_and_cut app text_work in
  let profile_sig =
    match Adps.load_profile image with
    | Some (_, icc) -> Drift.of_icc icc
    | None -> (
        (* the analyzed image dropped raw profiles; rebuild from a
           profiling run *)
        let image2 = Adps.instrument app.App.app_image in
        let _, _, rte = Adps.profile_results ~image:image2 ~registry:app.App.app_registry text_work.App.sc_run in
        Drift.of_icc (Rte.icc rte))
  in
  Printf.printf "\nDay 0: profiled text editing; %d classifications on the server.\n"
    dist.Analysis.server_count;

  (* Days 1-2: the user still edits text — the distribution fits. *)
  let comm1, sig1 = run_distributed image app text_work in
  Printf.printf "Day 1 (text):  comm %.3f s, usage similarity %.2f -> %s\n" comm1
    (Drift.similarity profile_sig sig1)
    (if Drift.drifted ~profile:profile_sig sig1 then "DRIFT" else "ok");

  (* Day 3: the user switches to big table documents. The stale
     text-optimized distribution still runs, but poorly, and the
     counters notice. *)
  let comm3, sig3 = run_distributed image app table_work in
  Printf.printf "Day 3 (tables): comm %.3f s, usage similarity %.2f -> %s\n" comm3
    (Drift.similarity profile_sig sig3)
    (if Drift.drifted ~profile:profile_sig sig3 then "DRIFT detected" else "ok");

  (* Coign silently re-profiles the drifted usage and re-cuts. *)
  print_endline "\nre-profiling the new usage and re-cutting the ICC graph...";
  let image', dist' = profile_and_cut app table_work in
  let comm4, _ = run_distributed image' app table_work in
  Printf.printf
    "Day 4 (tables, re-optimized): comm %.3f s (%d classifications on the server)\n" comm4
    dist'.Analysis.server_count;
  Printf.printf
    "\nThe stale distribution paid %.3f s per session; the re-optimized one pays %.3f s\n\
     — %.0f%% of the drift-induced cost recovered without user involvement.\n"
    comm3 comm4
    ((1. -. (comm4 /. comm3)) *. 100.)
